// Package server is enrichdb's network front end: a TCP listener speaking
// the wire protocol, binding one snapshot-isolated session per connection
// and streaming columnar result batches back to clients.
//
// Connection lifecycle: accept → handshake (Hello/Welcome under a deadline,
// token → tenant) → session bind (db.SessionFor, so per-tenant quotas and
// priorities admit or queue the connection) → serve loop (frames dispatched,
// queries run in per-query goroutines with their own cancel contexts) →
// drain (session closed, quota released — also on abrupt disconnect).
//
// Queries are killable: a Cancel frame aborts the sender's own in-flight
// query, a Kill frame aborts queries on another connection of the same
// tenant. Cancellation reaches plain and progressive executions mid-flight
// (the engine polls the context between batches; the progressive loop checks
// it per epoch); loose and tight executions cancel at stream boundaries.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"enrichdb"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/types"
	"enrichdb/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// DB is the database to serve. Required.
	DB *enrichdb.DB
	// Tokens maps handshake auth tokens to tenant names. With a nil map any
	// token is accepted and bound to the default tenant ""; with a non-nil
	// map, unknown tokens are refused (CodeAuth).
	Tokens map[string]string
	// HandshakeTimeout bounds the Hello/Welcome exchange (default 5s) — a
	// peer trickling its handshake one byte at a time is cut off here.
	HandshakeTimeout time.Duration
	// IdleTimeout closes connections with no inbound frame for this long;
	// zero means no idle limit. In-flight queries extend the allowance: the
	// deadline is re-armed per frame *and* while queries are outstanding.
	IdleTimeout time.Duration
	// WriteTimeout bounds each outbound frame write (default 10s); a
	// consumer stalling the stream longer loses the connection
	// (CodeSlowConsumer is sent on a best-effort basis).
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight queries before
	// force-closing connections (default 5s).
	DrainTimeout time.Duration
	// MaxFrame caps accepted frame sizes (default wire.MaxFrameLen).
	MaxFrame int
	// BatchRows is the result-stream stride (default wire.DefaultBatchRows).
	BatchRows int
	// Progressive is the option template for progressive queries (Design,
	// OnEpoch, Quality and Cancel are overridden per query).
	Progressive enrichdb.ProgressiveOptions
	// Tracer, when non-nil, receives the serving tier's spans: handshake and
	// admission per connection, and — for sampled queries — the full
	// execution chain (plan/probe/enrich/epoch spans down in the drivers plus
	// the result-stream span), every span stamped with the query's trace ID.
	Tracer *telemetry.Tracer
	// SampleEvery traces every Nth query per connection even when the client
	// didn't set the sampled flag (1 samples everything, 0 disables
	// server-side sampling). A sampled query also gets a Profile frame with
	// its span summaries.
	SampleEvery int
	// SlowQueryThreshold, together with SlowQueryLog, logs every query whose
	// wall time reaches the threshold.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives one JSON line per slow query: tenant, connection,
	// query text, design, wall time, row/enrichment counts, trace ID, and the
	// operator profile when one was collected. Writes are serialized.
	SlowQueryLog io.Writer
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Server is the TCP serving tier.
type Server struct {
	cfg Config
	reg *telemetry.Registry

	mu          sync.Mutex
	ln          net.Listener
	conns       map[uint64]*conn
	nextConn    uint64
	draining    bool
	drainReason string
	closed      bool

	slowMu sync.Mutex // serializes SlowQueryLog writes

	wg sync.WaitGroup // accept loop + connection handlers
}

// New builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.BatchRows <= 0 || cfg.BatchRows > wire.MaxBatchRows {
		cfg.BatchRows = wire.DefaultBatchRows
	}
	return &Server{cfg: cfg, reg: cfg.DB.Telemetry(), conns: make(map[uint64]*conn)}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Listen binds addr and starts accepting in the background. Use Addr for
// the bound address (addr may use port 0).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return nil
}

// Addr returns the bound listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed by Drain/Close
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.nextConn++
		c := &conn{
			s:       s,
			id:      s.nextConn,
			nc:      nc,
			queries: make(map[uint32]*liveQuery),
			stmts:   make(map[string]stmt),
			// The connection's trace ID covers handshake, admission and every
			// query the client didn't stamp with its own trace ID, so one
			// JSONL trace spans the connection end to end.
			trace: uint64(time.Now().UnixNano()) ^ (s.nextConn * 0x9e3779b97f4a7c15),
		}
		s.conns[c.id] = c
		s.mu.Unlock()
		s.reg.Counter("serve.conn_total").Add(1)
		s.reg.Gauge("serve.conn_open").Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.handle()
		}()
	}
}

// removeConn unregisters a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c.id)
	s.mu.Unlock()
	s.reg.Gauge("serve.conn_open").Add(-1)
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: stop accepting, announce Drain on
// every connection, refuse new queries (CodeDraining), wait up to
// DrainTimeout for in-flight queries, then close all connections. Safe to
// call once; it blocks until every connection handler returned.
func (s *Server) Drain(reason string) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.drainReason = reason
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.reg.Counter("serve.drains").Add(1)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.write(&wire.Drain{Reason: reason})
	}
	// Wait for in-flight queries, bounded.
	done := make(chan struct{})
	go func() {
		for _, c := range conns {
			c.qwg.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.logf("server: drain timeout after %v, force-closing", s.cfg.DrainTimeout)
	}
	s.Close()
}

// Close shuts down immediately: the listener and every connection are
// closed, in-flight queries are canceled, and all handlers are awaited.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.shutdown()
	}
	s.wg.Wait()
}

// stmt is one prepared statement.
type stmt struct {
	design wire.Design
	sql    string
}

// liveQuery is one in-flight query's control block: the cancel hook plus
// what /statusz shows about it.
type liveQuery struct {
	cancel context.CancelFunc
	sql    string
	design wire.Design
	start  time.Time
}

// conn is one client connection's server-side state.
type conn struct {
	s     *Server
	id    uint64
	nc    net.Conn
	trace uint64            // connection-level trace ID
	tr    *telemetry.Tracer // cfg.Tracer stamped with trace (nil when untraced)
	qn    uint64            // queries started (read-loop only; drives SampleEvery)

	wmu  sync.Mutex
	wbuf []byte

	mu      sync.Mutex
	sess    *enrichdb.Session
	tenant  string
	queries map[uint32]*liveQuery
	stmts   map[string]stmt
	closed  bool

	qwg sync.WaitGroup // in-flight query goroutines
}

// write sends one frame under the write lock and deadline. A failed write
// tears the connection down (the read loop unblocks on the closed socket).
func (c *conn) write(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := wire.AppendFrame(c.wbuf[:0], f)
	if err != nil {
		return err
	}
	c.wbuf = buf[:0]
	c.nc.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
	if _, err := c.nc.Write(buf); err != nil {
		c.s.reg.Counter("serve.write_errors").Add(1)
		c.nc.Close()
		return err
	}
	c.s.reg.Counter("serve.frames_out").Add(1)
	return nil
}

// shutdown force-closes the connection and cancels its queries.
func (c *conn) shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cancels := make([]context.CancelFunc, 0, len(c.queries))
	for _, q := range c.queries {
		cancels = append(cancels, q.cancel)
	}
	c.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	c.nc.Close()
}

// handle runs the connection lifecycle; it owns the read side.
func (c *conn) handle() {
	defer c.s.removeConn(c)
	defer c.nc.Close()
	if !c.handshake() {
		c.s.reg.Counter("serve.handshake_rejected").Add(1)
		return
	}
	// The session is the connection's admission slot: release it however the
	// connection ends — clean close, abrupt disconnect, drain, kill.
	defer c.sess.Close()
	defer func() {
		// Disconnect aborts the connection's in-flight queries and waits for
		// their goroutines, so no query outlives its session.
		c.shutdown()
		c.qwg.Wait()
	}()
	c.serveLoop()
}

// handshake performs Hello → (Welcome | Error) under HandshakeTimeout and
// binds the session. Reports success.
func (c *conn) handshake() bool {
	cfg := &c.s.cfg
	c.tr = cfg.Tracer.WithTrace(c.trace)
	sp := c.tr.Start("server.handshake").Int("conn", int64(c.id))
	c.nc.SetReadDeadline(time.Now().Add(cfg.HandshakeTimeout))
	fr, err := wire.ReadFrame(c.nc, cfg.MaxFrame)
	if err != nil {
		sp.Str("error", "read: "+err.Error()).End()
		return false // slowloris, garbage, or disconnect: no reply owed
	}
	hello, ok := fr.(*wire.Hello)
	if !ok {
		c.write(&wire.Error{Code: wire.CodeBadFrame, Msg: fmt.Sprintf("expected Hello, got %s", fr.Type())})
		sp.Str("error", "bad first frame").End()
		return false
	}
	if hello.Proto != wire.ProtoVersion {
		c.write(&wire.Error{Code: wire.CodeUnsupported, Msg: fmt.Sprintf("protocol %d not supported", hello.Proto)})
		sp.Str("error", "unsupported proto").End()
		return false
	}
	tenant := ""
	if cfg.Tokens != nil {
		t, ok := cfg.Tokens[hello.Token]
		if !ok {
			c.write(&wire.Error{Code: wire.CodeAuth, Msg: "unknown token"})
			sp.Str("error", "unknown token").End()
			return false
		}
		tenant = t
	}
	if c.s.Draining() {
		c.write(&wire.Error{Code: wire.CodeDraining, Msg: "server is draining"})
		sp.Str("error", "draining").End()
		return false
	}
	// Admission control queues here: the wait is the gap between this span
	// and the handshake span's end, and lands in serve.admission_wait_ms.
	spAdm := c.tr.Start("server.admission").Str("tenant", tenant)
	sess, err := cfg.DB.SessionFor(tenant)
	if err != nil {
		spAdm.Str("error", err.Error()).End()
		sp.End()
		code := wire.CodeInternal
		if errors.Is(err, enrichdb.ErrSessionTimeout) {
			code = wire.CodeAdmission
		}
		c.write(&wire.Error{Code: code, Msg: err.Error()})
		return false
	}
	spAdm.End()
	c.mu.Lock()
	c.sess = sess
	c.tenant = tenant
	c.mu.Unlock()
	if err := c.write(&wire.Welcome{Proto: wire.ProtoVersion, ConnID: c.id, Tenant: tenant, Version: sess.Version()}); err != nil {
		sp.Str("error", "welcome write").End()
		return false
	}
	sp.Str("tenant", tenant).Int("version", int64(sess.Version())).End()
	return true
}

// serveLoop reads and dispatches frames until the connection ends.
func (c *conn) serveLoop() {
	cfg := &c.s.cfg
	cr := &countReader{r: c.nc}
	for {
		if cfg.IdleTimeout > 0 {
			c.nc.SetReadDeadline(time.Now().Add(cfg.IdleTimeout))
		} else {
			c.nc.SetReadDeadline(time.Time{})
		}
		before := cr.n
		fr, err := wire.ReadFrame(cr, cfg.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && cr.n == before && c.inFlight() > 0 {
				// Idle timeout at a frame boundary with queries still
				// running: the client is waiting on us, not gone. A timeout
				// mid-frame falls through — the stream is desynchronized.
				continue
			}
			return
		}
		c.s.reg.Counter("serve.frames_in").Add(1)
		switch f := fr.(type) {
		case *wire.Query:
			c.startQuery(f.ID, f.Design, f.SQL, f.Trace)
		case *wire.Prepare:
			c.prepare(f)
		case *wire.Execute:
			c.mu.Lock()
			st, ok := c.stmts[f.Name]
			c.mu.Unlock()
			if !ok {
				c.write(&wire.Error{Query: f.ID, Code: wire.CodeUnknownStmt, Msg: fmt.Sprintf("statement %q not prepared", f.Name)})
				continue
			}
			c.startQuery(f.ID, st.design, st.sql, f.Trace)
		case *wire.Cancel:
			c.cancelQuery(f.Query)
		case *wire.Kill:
			c.kill(f)
		case *wire.Ping:
			c.write(&wire.Pong{Nonce: f.Nonce})
		case *wire.Pong:
			// Liveness reply; nothing to correlate server-side yet.
		default:
			// Server-bound protocol violation (e.g. a second Hello or a
			// result frame): connection-level error, then hang up.
			c.write(&wire.Error{Code: wire.CodeBadFrame, Msg: fmt.Sprintf("unexpected frame %s", fr.Type())})
			return
		}
	}
}

func (c *conn) inFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queries)
}

// prepare validates and registers a named statement.
func (c *conn) prepare(f *wire.Prepare) {
	if f.Name == "" {
		c.write(&wire.Error{Query: f.ID, Code: wire.CodeBadFrame, Msg: "empty statement name"})
		return
	}
	c.mu.Lock()
	c.stmts[f.Name] = stmt{design: f.Design, sql: f.SQL}
	c.mu.Unlock()
	c.write(&wire.PrepareOK{ID: f.ID, Name: f.Name})
}

// startQuery admits and launches one query goroutine.
func (c *conn) startQuery(id uint32, design wire.Design, sql string, tc wire.TraceContext) {
	if id == 0 {
		c.write(&wire.Error{Code: wire.CodeBadFrame, Msg: "query ID 0 is reserved"})
		return
	}
	if c.s.Draining() {
		c.s.reg.Counter("serve.queries_rejected").Add(1)
		c.write(&wire.Error{Query: id, Code: wire.CodeDraining, Msg: "server is draining"})
		return
	}
	// Resolve the query's trace identity on the read loop: the client's
	// trace ID when it sent one, the connection's otherwise (so an untraced
	// client's whole connection still forms one trace). Sampling is the
	// client's flag OR'd with the server-side every-Nth rotation.
	c.qn++
	traceID := tc.TraceID
	if traceID == 0 {
		traceID = c.trace
	}
	sampled := tc.Sampled
	if n := c.s.cfg.SampleEvery; !sampled && n > 0 && (c.qn-1)%uint64(n) == 0 {
		sampled = true
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cancel()
		return
	}
	if _, dup := c.queries[id]; dup {
		c.mu.Unlock()
		cancel()
		c.write(&wire.Error{Query: id, Code: wire.CodeBadFrame, Msg: "query ID already in flight"})
		return
	}
	c.queries[id] = &liveQuery{cancel: cancel, sql: sql, design: design, start: time.Now()}
	c.qwg.Add(1)
	c.mu.Unlock()
	c.s.reg.Counter("serve.queries_started").Add(1)
	go func() {
		defer c.qwg.Done()
		defer func() {
			c.mu.Lock()
			delete(c.queries, id)
			c.mu.Unlock()
			cancel()
		}()
		c.runQuery(ctx, id, design, sql, traceID, sampled)
	}()
}

// cancelQuery aborts the connection's own in-flight query.
func (c *conn) cancelQuery(id uint32) {
	c.mu.Lock()
	q := c.queries[id]
	c.mu.Unlock()
	if q != nil {
		q.cancel()
	}
}

// kill aborts queries on another connection of the same tenant.
func (c *conn) kill(f *wire.Kill) {
	c.s.mu.Lock()
	target := c.s.conns[f.TargetConn]
	c.s.mu.Unlock()
	if target == nil || target.sess == nil || target.tenant != c.tenant {
		// Unknown connections and other tenants' connections are
		// indistinguishable on purpose.
		c.write(&wire.Killed{ID: f.ID, Count: 0})
		return
	}
	target.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(target.queries))
	if f.TargetQuery != 0 {
		if q := target.queries[f.TargetQuery]; q != nil {
			cancels = append(cancels, q.cancel)
		}
	} else {
		for _, q := range target.queries {
			cancels = append(cancels, q.cancel)
		}
	}
	target.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	c.s.reg.Counter("serve.kills").Add(int64(len(cancels)))
	c.write(&wire.Killed{ID: f.ID, Count: uint32(len(cancels))})
}

// queryError maps an execution error to a wire error frame.
func (c *conn) queryError(ctx context.Context, id uint32, err error) {
	code := wire.CodeQuery
	switch {
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		code = wire.CodeCanceled
		err = fmt.Errorf("query canceled")
		c.s.reg.Counter("serve.queries_canceled").Add(1)
	case errors.Is(err, enrichdb.ErrSessionTimeout):
		code = wire.CodeAdmission
	}
	c.write(&wire.Error{Query: id, Code: code, Msg: err.Error()})
}

// streamRows sends header + batches for a complete result set, polling ctx
// between batches so kills interrupt long streams.
func (c *conn) streamRows(ctx context.Context, id uint32, cols []string, numRows int, at func(int) []enrichdb.Value) error {
	if err := c.write(&wire.ResultHeader{Query: id, Columns: cols}); err != nil {
		return err
	}
	stride := c.s.cfg.BatchRows
	for lo := 0; lo < numRows; lo += stride {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		hi := lo + stride
		if hi > numRows {
			hi = numRows
		}
		chunk := make([][]enrichdb.Value, 0, hi-lo)
		for i := lo; i < hi; i++ {
			chunk = append(chunk, at(i))
		}
		if err := c.write(wire.BatchFromValues(id, chunk)); err != nil {
			return err
		}
	}
	return nil
}

// observeLatency records one finished (or failed) query in the SLO
// histograms: the global serve.latency_ms and the tenant's
// serve.tenant.<name>.latency_ms, whose p50/p95/p99 /metrics exports.
func (c *conn) observeLatency(wall time.Duration) {
	reg := c.s.reg
	reg.Histogram("serve.latency_ms", telemetry.LatencyBucketsMs).ObserveDuration(wall)
	if c.tenant != "" {
		reg.Histogram("serve.tenant."+c.tenant+".latency_ms", telemetry.LatencyBucketsMs).ObserveDuration(wall)
	}
}

// flattenProfile serializes an operator tree preorder for the Profile frame.
func flattenProfile(root *enrichdb.OpProfile) []wire.ProfileNode {
	var nodes []wire.ProfileNode
	var walk func(n *enrichdb.OpProfile, depth uint32)
	walk = func(n *enrichdb.OpProfile, depth uint32) {
		if n == nil {
			return
		}
		nodes = append(nodes, wire.ProfileNode{
			Depth: depth, Name: n.Name, Detail: n.Detail,
			RowsIn: n.RowsIn, RowsOut: n.RowsOut,
			Batches: n.Batches, FallbackRows: n.FallbackRows,
			WallNs: n.Wall.Nanoseconds(),
		})
		for _, ch := range n.Children {
			walk(ch, depth+1)
		}
	}
	walk(root, 0)
	return nodes
}

// profileSpans summarizes collected spans for the Profile frame (full
// attributes stay in the server-side JSONL trace).
func profileSpans(spans []*telemetry.Span) []wire.ProfileSpan {
	out := make([]wire.ProfileSpan, 0, len(spans))
	for _, sp := range spans {
		out = append(out, wire.ProfileSpan{Name: sp.Name, Epoch: uint32(sp.Epoch), DurUS: sp.Dur.Microseconds()})
	}
	return out
}

// slowQueryRecord is one SlowQueryLog line.
type slowQueryRecord struct {
	TS          string  `json:"ts"`
	Tenant      string  `json:"tenant"`
	Conn        uint64  `json:"conn"`
	Query       uint32  `json:"query"`
	Design      string  `json:"design"`
	SQL         string  `json:"sql"`
	WallMS      float64 `json:"wall_ms"`
	Rows        uint64  `json:"rows"`
	Enrichments int64   `json:"enrichments,omitempty"`
	UDFCalls    int64   `json:"udf_calls,omitempty"`
	Epochs      uint32  `json:"epochs,omitempty"`
	Trace       string  `json:"trace,omitempty"`
	Profile     string  `json:"profile,omitempty"`
}

// maybeSlowLog appends one JSONL record when the query crossed the slow
// threshold.
func (s *Server) maybeSlowLog(rec slowQueryRecord, wall time.Duration) {
	if s.cfg.SlowQueryLog == nil || s.cfg.SlowQueryThreshold <= 0 || wall < s.cfg.SlowQueryThreshold {
		return
	}
	rec.TS = time.Now().UTC().Format(time.RFC3339Nano)
	rec.WallMS = float64(wall.Microseconds()) / 1000
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.reg.Counter("serve.slow_queries").Add(1)
	s.slowMu.Lock()
	defer s.slowMu.Unlock()
	s.cfg.SlowQueryLog.Write(append(b, '\n'))
}

// runQuery executes one query under its cancel context and streams the
// result. A leading EXPLAIN ANALYZE turns the query into its own profile:
// the inner SELECT runs with the operator profiler attached and the result
// set is the rendered tree (one "plan" column), with the structured nodes on
// the Profile frame. A sampled query executes under a trace-ID-stamped
// tracer teeing into a collector, and its span summaries ride the Profile
// frame too.
func (c *conn) runQuery(ctx context.Context, id uint32, design wire.Design, sql string, traceID uint64, sampled bool) {
	start := time.Now()
	defer func() { c.observeLatency(time.Since(start)) }()
	explain := false
	if st, perr := sqlparser.ParseStatement(sql); perr == nil {
		if st.ExplainPlan {
			// Plan-only EXPLAIN: render the annotated operator tree without
			// executing — no scans, no enrichment, zero result-side effects.
			// The tree is the plain (unrewritten) plan regardless of the
			// requested design.
			c.runExplainPlan(ctx, id, st.Select.String(), start)
			return
		}
		if st.ExplainAnalyze {
			explain = true
			sql = st.Select.String()
		}
	}
	var collect *telemetry.CollectSink
	qtr := c.s.cfg.Tracer.WithTrace(traceID)
	if sampled {
		collect = &telemetry.CollectSink{}
		qtr = qtr.Tee(collect) // works even with no server tracer configured
	}
	obs := enrichdb.QueryObs{Tracer: qtr, Profile: explain}

	done := wire.ResultDone{Query: id}
	var cols []string
	var numRows int
	var at func(int) []enrichdb.Value
	var prof *enrichdb.QueryProfile
	var err error

	switch design {
	case wire.DesignPlain:
		var rows *enrichdb.Rows
		rows, prof, err = c.sess.QueryObsCtx(ctx, sql, obs)
		if err == nil {
			cols, numRows, at = rows.Columns(), rows.Len(), rows.At
		}
	case wire.DesignLoose:
		var res *enrichdb.Result
		res, err = c.sess.QueryLooseObs(sql, obs)
		if err == nil {
			cols, numRows, at = res.Rows.Columns(), res.Rows.Len(), res.Rows.At
			done.Enrichments = res.Enrichments
			done.Failed = int64(res.FailedEnrichments)
			prof = res.Profile
		}
	case wire.DesignTight:
		var res *enrichdb.Result
		res, err = c.sess.QueryTightObs(sql, obs)
		if err == nil {
			cols, numRows, at = res.Rows.Columns(), res.Rows.Len(), res.Rows.At
			done.Enrichments = res.Enrichments
			done.UDFCalls = res.UDFInvocations
			prof = res.Profile
		}
	case wire.DesignProgressive:
		opts := c.s.cfg.Progressive
		opts.Cancel = ctx.Done()
		opts.Tracer = qtr
		opts.Profile = explain
		opts.OnEpoch = func(ep enrichdb.Epoch) {
			c.write(&wire.Epoch{
				Query: id, N: uint32(ep.N), Planned: uint32(ep.Planned),
				Enrichments: ep.Enrichments,
				Inserted:    uint32(ep.Inserted), Deleted: uint32(ep.Deleted),
				Quality: ep.Quality, WallNs: ep.Wall.Nanoseconds(),
				PlanNs:   ep.PlanTime.Nanoseconds(),
				EnrichNs: ep.EnrichTime.Nanoseconds(),
				DeltaNs:  ep.DeltaTime.Nanoseconds(),
			})
		}
		var res *enrichdb.ProgressiveResult
		res, err = c.sess.QueryProgressive(sql, opts)
		if err == nil {
			cols, numRows, at = res.Rows.Columns(), res.Rows.Len(), res.Rows.At
			done.Enrichments = res.TotalEnrichments
			done.Epochs = uint32(len(res.Epochs))
			prof = res.Profile
		}
	default:
		err = fmt.Errorf("unknown design %d", design)
	}
	if err != nil {
		c.queryError(ctx, id, err)
		return
	}
	// A canceled query whose execution finished anyway still reports the
	// cancellation — the client asked for no more frames on this ID.
	if ctx.Err() != nil {
		c.queryError(ctx, id, ctx.Err())
		return
	}
	if explain {
		// The EXPLAIN ANALYZE result set is the rendered operator tree.
		lines := strings.Split(strings.TrimRight(prof.String(), "\n"), "\n")
		cols, numRows = []string{"plan"}, len(lines)
		at = func(i int) []enrichdb.Value { return []enrichdb.Value{types.NewString(lines[i])} }
	}
	spStream := qtr.Start("server.result_stream").Int("rows", int64(numRows))
	if err := c.streamRows(ctx, id, cols, numRows, at); err != nil {
		spStream.Str("error", err.Error()).End()
		if ctx.Err() != nil {
			c.queryError(ctx, id, err)
		}
		return // write errors already tore the conn down
	}
	spStream.End()
	if sampled || explain {
		pf := &wire.Profile{Query: id, TraceID: traceID, Design: design}
		if prof != nil {
			pf.Nodes = flattenProfile(prof.Root)
		}
		if collect != nil {
			pf.Spans = profileSpans(collect.Spans())
		}
		c.write(pf)
	}
	wall := time.Since(start)
	done.Rows = uint64(numRows)
	done.WallNs = wall.Nanoseconds()
	c.write(&done)
	c.s.reg.Counter("serve.queries_done").Add(1)
	c.s.maybeSlowLog(slowQueryRecord{
		Tenant: c.tenant, Conn: c.id, Query: id, Design: design.String(), SQL: sql,
		Rows: uint64(numRows), Enrichments: done.Enrichments, UDFCalls: done.UDFCalls,
		Epochs: done.Epochs, Trace: telemetry.FormatTraceID(traceID), Profile: prof.String(),
	}, wall)
}

// runExplainPlan answers a plan-only `EXPLAIN SELECT ...`: the result set is
// the annotated plan tree (one "plan" column), produced without executing
// the query — ResultDone reports zero enrichments and zero UDF calls.
func (c *conn) runExplainPlan(ctx context.Context, id uint32, sql string, start time.Time) {
	plan, err := c.sess.ExplainPlan(sql)
	if err != nil {
		c.queryError(ctx, id, err)
		return
	}
	lines := strings.Split(strings.TrimRight(plan, "\n"), "\n")
	at := func(i int) []enrichdb.Value { return []enrichdb.Value{types.NewString(lines[i])} }
	if err := c.streamRows(ctx, id, []string{"plan"}, len(lines), at); err != nil {
		if ctx.Err() != nil {
			c.queryError(ctx, id, err)
		}
		return
	}
	done := wire.ResultDone{Query: id, Rows: uint64(len(lines)), WallNs: time.Since(start).Nanoseconds()}
	c.write(&done)
	c.s.reg.Counter("serve.queries_done").Add(1)
}

// countReader counts consumed bytes, letting the serve loop distinguish a
// pure idle timeout (nothing read — safe to keep serving while queries run)
// from a timeout mid-frame (stream desynchronized — the connection must
// close).
type countReader struct {
	r io.Reader
	n int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
