package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/types"
)

// DefaultHedgeDelay is how long a sub-batch may straggle before a hedged
// duplicate is dispatched to a second backend.
const DefaultHedgeDelay = 25 * time.Millisecond

// defaultSubBatch caps requests per dispatched sub-batch.
const defaultSubBatch = 64

// FleetOptions tunes DialFleet.
type FleetOptions struct {
	// HedgeDelay is the straggler threshold before a sub-batch is hedged to
	// the next least-loaded backend (0 = DefaultHedgeDelay, negative
	// disables hedging).
	HedgeDelay time.Duration
	// SubBatch caps requests per dispatched sub-batch (0 = 64). Smaller
	// sub-batches steal and hedge at finer granularity.
	SubBatch int
	// Client configures each backend's RPC client (timeouts, retries).
	Client remote.Options
	// Telemetry receives the shard.fleet_* and shard.hedge_* counters; nil
	// disables.
	Telemetry *telemetry.Registry
}

// backend is one enrichment server in the fleet.
type backend struct {
	addr     string
	client   *remote.Client
	inflight atomic.Int64
}

// Fleet is a loose.Enricher over a pool of N enrichment servers. Each batch
// is split into per-shard sub-batches pushed onto a shared work queue; one
// dispatcher per backend drains its own shard's jobs first and steals the
// rest (work stealing at epoch boundaries — an idle shard's dispatcher
// absorbs a loaded shard's backlog). Jobs route to the least-loaded backend
// (atomic in-flight counts, ties to the lowest index); a sub-batch that
// straggles past the hedge delay is duplicated to the next least-loaded
// backend and the first response wins — the loser's result is discarded on
// arrival (its RPC is bounded by the client's call timeout) and its
// goroutine exits without leaking. A sub-batch that fails on one backend
// fails over to the others; only when every backend has failed does it
// degrade to per-request FailResponses, preserving the loose design's
// NULL-on-failure semantics.
//
// Telemetry: shard.fleet_batches, shard.fleet_jobs, shard.fleet_steals,
// shard.fleet_failovers, shard.hedge_launched, shard.hedge_wins,
// shard.hedge_losses.
type Fleet struct {
	opts     FleetOptions
	backends []*backend
	part     Partitioner
	closed   atomic.Bool
}

var _ loose.Enricher = (*Fleet)(nil)

// DialFleet connects to every enrichment server in addrs.
func DialFleet(addrs []string, opts FleetOptions) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: fleet needs at least one address")
	}
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = DefaultHedgeDelay
	}
	if opts.SubBatch <= 0 {
		opts.SubBatch = defaultSubBatch
	}
	if opts.Telemetry != nil {
		opts.Client.Telemetry = opts.Telemetry
	}
	f := &Fleet{opts: opts, part: NewHashPartitioner(len(addrs))}
	for _, addr := range addrs {
		cl, err := remote.DialOptions(addr, opts.Client)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.backends = append(f.backends, &backend{addr: addr, client: cl})
	}
	return f, nil
}

// Backends returns the pool size.
func (f *Fleet) Backends() int { return len(f.backends) }

// Close closes every backend client.
func (f *Fleet) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	var first error
	for _, b := range f.backends {
		if b.client != nil {
			if err := b.client.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// count bumps a fleet telemetry counter (nil-safe).
func (f *Fleet) count(name string, d int64) {
	if f.opts.Telemetry != nil {
		f.opts.Telemetry.Counter(name).Add(d)
	}
}

// job is one dispatched sub-batch: a slice of the original batch plus the
// indices its responses reassemble into.
type job struct {
	home int // shard the requests hash to; its dispatcher prefers the job
	idxs []int
	reqs []loose.Request
}

// jobQueue is the shared work-stealing queue: dispatcher w takes its own
// shard's jobs first, then steals the oldest foreign job.
type jobQueue struct {
	mu   sync.Mutex
	jobs []*job
}

func (q *jobQueue) take(worker int) (j *job, stolen, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) == 0 {
		return nil, false, false
	}
	for i, cand := range q.jobs {
		if cand.home == worker {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return cand, false, true
		}
	}
	j = q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true, true
}

// EnrichBatch implements loose.Enricher over the pool.
func (f *Fleet) EnrichBatch(reqs []loose.Request) ([]loose.Response, loose.BatchTiming, error) {
	if len(reqs) == 0 {
		return nil, loose.BatchTiming{}, nil
	}
	f.count("shard.fleet_batches", 1)
	start := time.Now()

	// Split into per-shard sub-batches, preserving request order within each.
	n := len(f.backends)
	byShard := make([][]int, n)
	for i, r := range reqs {
		s := f.part.Route(types.NewInt(r.TID))
		byShard[s] = append(byShard[s], i)
	}
	queue := &jobQueue{}
	for s, idxs := range byShard {
		for len(idxs) > 0 {
			k := len(idxs)
			if k > f.opts.SubBatch {
				k = f.opts.SubBatch
			}
			sub := &job{home: s, idxs: idxs[:k]}
			sub.reqs = make([]loose.Request, k)
			for j, ri := range sub.idxs {
				sub.reqs[j] = reqs[ri]
			}
			queue.jobs = append(queue.jobs, sub)
			idxs = idxs[k:]
		}
	}
	njobs := len(queue.jobs)
	f.count("shard.fleet_jobs", int64(njobs))

	resps := make([]loose.Response, len(reqs))
	var maxCompute int64 // atomic, ns
	workers := n
	if njobs < workers {
		workers = njobs
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j, stolen, ok := queue.take(w)
				if !ok {
					return
				}
				if stolen {
					f.count("shard.fleet_steals", 1)
				}
				out, timing := f.runJob(j)
				for i, ri := range j.idxs {
					resps[ri] = out[i]
				}
				for {
					cur := atomic.LoadInt64(&maxCompute)
					if int64(timing.Compute) <= cur ||
						atomic.CompareAndSwapInt64(&maxCompute, cur, int64(timing.Compute)) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	wall := time.Since(start)
	compute := time.Duration(atomic.LoadInt64(&maxCompute))
	network := wall - compute
	if network < 0 {
		network = 0
	}
	return resps, loose.BatchTiming{Compute: compute, Network: network}, nil
}

// pick returns the least-loaded backend not in the exclusion mask (ties to
// the lowest index), or -1.
func (f *Fleet) pick(excluded uint64) int {
	best, bestLoad := -1, int64(0)
	for i, b := range f.backends {
		if excluded&(1<<uint(i)) != 0 {
			continue
		}
		load := b.inflight.Load()
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// runJob executes one sub-batch with least-loaded routing, hedging and
// failover. It always returns len(j.reqs) responses: total failure across
// every backend degrades to per-request FailResponses.
func (f *Fleet) runJob(j *job) ([]loose.Response, loose.BatchTiming) {
	var tried uint64
	var lastErr error
	for range f.backends {
		b := f.pick(tried)
		if b < 0 {
			break
		}
		tried |= 1 << uint(b)
		out, timing, err := f.callHedged(j, b, tried)
		if err == nil {
			return out, timing
		}
		lastErr = err
		f.count("shard.fleet_failovers", 1)
	}
	msg := "shard: every fleet backend failed"
	if lastErr != nil {
		msg = fmt.Sprintf("%s: %v", msg, lastErr)
	}
	out := make([]loose.Response, len(j.reqs))
	for i, r := range j.reqs {
		out[i] = loose.FailResponse(r, msg)
	}
	return out, loose.BatchTiming{}
}

// attempt is one backend call's outcome.
type attempt struct {
	resps  []loose.Response
	timing loose.BatchTiming
	err    error
	from   int
}

// callHedged calls the chosen backend, duplicating the call to the next
// least-loaded backend if it straggles past the hedge delay. The first
// response wins; a losing in-flight call is bounded by the client's call
// timeout and its goroutine exits into a buffered channel (no leak), its
// result discarded.
func (f *Fleet) callHedged(j *job, primary int, tried uint64) ([]loose.Response, loose.BatchTiming, error) {
	ch := make(chan attempt, 2)
	call := func(bi int) {
		b := f.backends[bi]
		b.inflight.Add(int64(len(j.reqs)))
		defer b.inflight.Add(-int64(len(j.reqs)))
		resps, timing, err := b.client.EnrichBatch(j.reqs)
		ch <- attempt{resps: resps, timing: timing, err: err, from: bi}
	}
	go call(primary)
	if f.opts.HedgeDelay < 0 || len(f.backends) == 1 {
		a := <-ch
		return a.resps, a.timing, a.err
	}
	timer := time.NewTimer(f.opts.HedgeDelay)
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.resps, a.timing, a.err
	case <-timer.C:
	}
	// Straggler: hedge to the next least-loaded backend, excluding the
	// primary (a backend that already failed this job may be re-picked —
	// it is still a second, independent path).
	secondary := f.pick(1 << uint(primary))
	if secondary < 0 {
		a := <-ch
		return a.resps, a.timing, a.err
	}
	f.count("shard.hedge_launched", 1)
	go call(secondary)
	a := <-ch
	if a.err != nil {
		// First responder failed; the race is decided by the survivor.
		a = <-ch
		return a.resps, a.timing, a.err
	}
	if a.from == secondary {
		f.count("shard.hedge_wins", 1)
	} else {
		f.count("shard.hedge_losses", 1)
	}
	return a.resps, a.timing, a.err
}
