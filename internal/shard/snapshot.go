package shard

import (
	"fmt"
	"sort"
	"sync"

	"enrichdb/internal/catalog"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

// Snap is a sharded point-in-time Source: one frozen snapshot per replica,
// merged per relation in insertion-sequence order, stamped with the
// per-shard generation vector taken at the same cut. Sessions execute
// against the merged views; the scatter-gather executor fans out over the
// per-shard snapshots.
type Snap struct {
	cat      *catalog.Catalog
	shards   []storage.Source
	merged   map[string]*mergedView
	versions []uint64
}

var _ storage.Source = (*Snap)(nil)

// Catalog returns the catalog at freeze time.
func (s *Snap) Catalog() *catalog.Catalog { return s.cat }

// Table resolves the merged frozen view of the relation.
func (s *Snap) Table(name string) (storage.Relation, error) {
	v, ok := s.merged[name]
	if !ok {
		return nil, fmt.Errorf("shard: unknown relation %s", name)
	}
	return v, nil
}

// NumShards returns the replica count.
func (s *Snap) NumShards() int { return len(s.shards) }

// ShardSource returns shard i's frozen snapshot.
func (s *Snap) ShardSource(i int) storage.Source { return s.shards[i] }

// Versions returns the generation vector the snapshot was stamped with:
// per-shard commit counters, frozen atomically with the views. Two
// snapshots with equal vectors saw identical committed data, so
// cross-session enrichment sharing between them is trivially gen-safe; a
// component that advanced pinpoints the shard whose commits the older
// snapshot is missing.
func (s *Snap) Versions() []uint64 {
	return append([]uint64(nil), s.versions...)
}

// mergedView is the frozen merged Relation over one relation's per-shard
// views. Reads merge in insertion-sequence order (computed once — the views
// are immutable); derived-value writes route to the owning shard's view,
// which keeps the session-local image and performs the gen-guarded
// write-through to the live replica.
type mergedView struct {
	schema *catalog.Schema
	part   Partitioner // routing as of freeze time
	views  []storage.Relation

	once   sync.Once
	tuples []*types.Tuple
}

var _ storage.Relation = (*mergedView)(nil)

// Schema returns the relation's schema.
func (v *mergedView) Schema() *catalog.Schema { return v.schema }

// all returns the merged tuple order, computed once.
func (v *mergedView) all() []*types.Tuple {
	v.once.Do(func() {
		for _, sv := range v.views {
			if sv != nil {
				v.tuples = append(v.tuples, sv.Tuples()...)
			}
		}
		sort.Slice(v.tuples, func(a, b int) bool { return v.tuples[a].Seq < v.tuples[b].Seq })
	})
	return v.tuples
}

// Len returns the merged tuple count.
func (v *mergedView) Len() int { return len(v.all()) }

// view returns the shard view owning the id at freeze time.
func (v *mergedView) view(id int64) storage.Relation {
	sv := v.views[v.part.Route(types.NewInt(id))]
	return sv
}

// Get returns the frozen tuple image (session-local enrichment included).
func (v *mergedView) Get(id int64) *types.Tuple {
	if sv := v.view(id); sv != nil {
		return sv.Get(id)
	}
	return nil
}

// Scan walks the merged insertion order. Note: like the unsharded
// TableView, scans read the frozen base images; Get reflects session-local
// derived writes.
func (v *mergedView) Scan(fn func(*types.Tuple) bool) {
	for _, tu := range v.all() {
		if sv := v.view(tu.ID); sv != nil {
			if cur := sv.Get(tu.ID); cur != nil {
				tu = cur
			}
		}
		if !fn(tu) {
			return
		}
	}
}

// Tuples returns the merged insertion-order snapshot, with session-local
// derived writes folded in (matching TableView.Tuples semantics).
func (v *mergedView) Tuples() []*types.Tuple {
	base := v.all()
	out := make([]*types.Tuple, len(base))
	for i, tu := range base {
		out[i] = tu
		if sv := v.view(tu.ID); sv != nil {
			if cur := sv.Get(tu.ID); cur != nil {
				out[i] = cur
			}
		}
	}
	return out
}

// IDs returns the merged insertion-order ids.
func (v *mergedView) IDs() []int64 {
	base := v.all()
	out := make([]int64, len(base))
	for i, tu := range base {
		out[i] = tu.ID
	}
	return out
}

// HasIndex mirrors the unsharded TableView: frozen views answer no index
// lookups, so sharded and unsharded sessions build identical plans.
func (v *mergedView) HasIndex(string) bool { return false }

// IndexTuples reports no index, like TableView.
func (v *mergedView) IndexTuples(string, types.Value) ([]*types.Tuple, bool) {
	return nil, false
}

// Update routes the derived write to the owning shard's view: the value
// lands in the session-local image and, generation-guarded, in the live
// replica. A tuple rebalanced to another shard after the freeze simply
// misses the live write-through (its old replica no longer holds it) —
// conservative, never stale.
func (v *mergedView) Update(id int64, col string, val types.Value) (types.Value, error) {
	sv := v.view(id)
	if sv == nil {
		return types.Null, fmt.Errorf("shard: %s: no view for tuple %d", v.schema.Name, id)
	}
	return sv.Update(id, col, val)
}
