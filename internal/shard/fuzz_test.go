package shard

import (
	"math"
	"testing"

	"enrichdb/internal/types"
)

// FuzzPartition probes the routing invariants the storage and fleet layers
// lean on: routing is total (every key, including NaN and -0.0, lands on
// exactly one shard in range), key-equal values co-locate, hash routing
// agrees with the engine's types.Hasher, clones route identically, and a
// rebalance split moves only the keys at or above the split point — a
// boundary key is owned by exactly one shard before and after.
func FuzzPartition(f *testing.F) {
	f.Add(1, int64(0), uint64(0), int64(0))
	f.Add(4, int64(-1), math.Float64bits(math.Copysign(0, -1)), int64(10))
	f.Add(8, int64(math.MaxInt64), math.Float64bits(math.NaN()), int64(-7))
	f.Add(3, int64(100), math.Float64bits(1.5), int64(100))
	f.Add(2, int64(50), uint64(0x7ff8000000000001), int64(49)) // NaN payload bits
	f.Fuzz(func(t *testing.T, n int, key int64, fbits uint64, at int64) {
		if n < 1 || n > 64 {
			n = 1 + int(uint(n)%64)
		}
		iv := types.NewInt(key)
		fv := types.NewFloat(math.Float64frombits(fbits))

		// Hash routing: total, deterministic, engine-hash parity.
		hp := NewHashPartitioner(n)
		for _, v := range []types.Value{iv, fv, types.Null} {
			got := hp.Route(v)
			if got < 0 || got >= n {
				t.Fatalf("hash Route(%v) = %d out of [0,%d)", v, got, n)
			}
			if got != hp.Route(v) {
				t.Fatalf("hash Route(%v) unstable", v)
			}
			if want := int(types.HashValue(v) % uint64(n)); got != want {
				t.Fatalf("hash Route(%v) = %d, engine hash says %d", v, got, want)
			}
		}
		// -0.0 folds into +0.0 (key-equal values co-locate).
		f0 := math.Float64frombits(fbits)
		if f0 == 0 {
			if hp.Route(types.NewFloat(0)) != hp.Route(fv) {
				t.Fatalf("±0.0 split across shards")
			}
		}

		// Range routing before/after a split.
		rp := NewRangePartitioner(n, []int64{at})
		probes := []int64{key, at, at - 1, at + 1, math.MinInt64, math.MaxInt64}
		before := make([]int, len(probes))
		for i, k := range probes {
			before[i] = rp.Route(types.NewInt(k))
			if before[i] < 0 || before[i] >= n {
				t.Fatalf("range Route(%d) = %d out of [0,%d)", k, before[i], n)
			}
		}
		// Non-int keys stay total under range partitioning too.
		if got := rp.Route(fv); got < 0 || got >= n {
			t.Fatalf("range Route(float) = %d out of [0,%d)", got, n)
		}

		cl := rp.Clone()
		split := key / 2
		to := rp.SplitAt(split)
		if to < 0 || to >= n {
			t.Fatalf("SplitAt(%d) returned shard %d out of [0,%d)", split, to, n)
		}
		for i, k := range probes {
			after := rp.Route(types.NewInt(k))
			if after < 0 || after >= n {
				t.Fatalf("post-split Route(%d) = %d out of [0,%d)", k, after, n)
			}
			// Route stability: keys outside the split segment, and keys below
			// the split point, never move.
			if k < split && after != before[i] {
				t.Fatalf("key %d below split %d moved shard %d -> %d", k, split, before[i], after)
			}
			// The clone taken before the split is unaffected.
			if cl.Route(types.NewInt(k)) != before[i] {
				t.Fatalf("pre-split clone moved key %d", k)
			}
		}
		// The boundary key is owned by the announced destination.
		if got := rp.Route(types.NewInt(split)); got != to {
			t.Fatalf("boundary key %d on shard %d, SplitAt said %d", split, got, to)
		}
	})
}
