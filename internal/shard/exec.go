package shard

import (
	"sort"
	"sync"

	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/storage"
)

// Scatterable is a sharded query source: the live *Store or a frozen *Snap.
// The scatter-gather executor plans per shard against ShardSource(i) and
// merges in insertion-sequence order.
type Scatterable interface {
	NumShards() int
	ShardSource(i int) storage.Source
}

// Eligible reports whether the analyzed query can run scatter-gather: a
// single-table scan/filter/projection with no aggregate, grouping, ordering
// or limit. Those shapes partition cleanly — each shard computes its slice
// of the answer independently and the merge is a pure order restoration.
// Everything else (joins, aggregates, LIMIT) runs over the merged views,
// which is correct for every shape.
func Eligible(a *engine.Analysis) bool {
	if len(a.Tables) != 1 || len(a.Joins) != 0 {
		return false
	}
	st := a.Stmt
	return !st.HasAggregate() && len(st.GroupBy) == 0 && len(st.OrderBy) == 0 && st.Limit < 0
}

// Scatter runs the analyzed query independently on every shard and merges
// the per-shard row streams by source-tuple insertion sequence, restoring
// exactly the order a single merged scan would have produced — the output
// is byte-identical to unsharded execution. Returns ok=false (and does
// nothing) when the query shape is not Eligible.
//
// The parent context contributes cancellation and the ablation/adaptivity
// knobs; each shard executes on a fresh context (executor state is not
// goroutine-safe).
func Scatter(a *engine.Analysis, src Scatterable, parent *engine.ExecCtx) ([]*expr.Row, *expr.RowSchema, bool, error) {
	if !Eligible(a) {
		return nil, nil, false, nil
	}
	n := src.NumShards()
	rel := a.Tables[0].Relation

	type shardOut struct {
		rows []*expr.Row
		seqs []uint64
		err  error
	}
	outs := make([]shardOut, n)
	var schema *expr.RowSchema
	var schemaMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ssrc := src.ShardSource(i)
			plan, err := engine.Build(a, ssrc)
			if err != nil {
				outs[i].err = err
				return
			}
			schemaMu.Lock()
			if schema == nil {
				schema = plan.Schema()
			}
			schemaMu.Unlock()
			ctx := engine.NewExecCtx()
			if parent != nil {
				ctx.Done = parent.Done
				ctx.NoVector = parent.NoVector
				ctx.ParallelMinRows = parent.ParallelMinRows
				ctx.Adapt = parent.Adapt
				ctx.NoAdaptive = parent.NoAdaptive
			}
			rows, err := plan.Execute(ctx)
			if err != nil {
				outs[i].err = err
				return
			}
			// Tag each row with its source tuple's insertion sequence for the
			// merge. Rows flowing out of an eligible plan carry exactly one
			// base TID; a tuple deleted between execute and tag (live scatter
			// under concurrent writers) inherits its predecessor's slot, which
			// keeps the merge total and deterministic for frozen sources.
			tbl, terr := ssrc.Table(rel)
			if terr != nil {
				outs[i].err = terr
				return
			}
			seqs := make([]uint64, len(rows))
			var prev uint64
			for j, row := range rows {
				if len(row.TIDs) > 0 {
					if tu := tbl.Get(row.TIDs[0]); tu != nil {
						prev = tu.Seq
					}
				}
				seqs[j] = prev
			}
			outs[i] = shardOut{rows: rows, seqs: seqs}
		}(i)
	}
	wg.Wait()
	total := 0
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, false, outs[i].err
		}
		total += len(outs[i].rows)
	}
	type tagged struct {
		row   *expr.Row
		seq   uint64
		shard int
		pos   int
	}
	merged := make([]tagged, 0, total)
	for i := range outs {
		for j, row := range outs[i].rows {
			merged = append(merged, tagged{row: row, seq: outs[i].seqs[j], shard: i, pos: j})
		}
	}
	sort.Slice(merged, func(x, y int) bool {
		if merged[x].seq != merged[y].seq {
			return merged[x].seq < merged[y].seq
		}
		if merged[x].shard != merged[y].shard {
			return merged[x].shard < merged[y].shard
		}
		return merged[x].pos < merged[y].pos
	})
	rows := make([]*expr.Row, len(merged))
	for i := range merged {
		rows[i] = merged[i].row
	}
	return rows, schema, true, nil
}
