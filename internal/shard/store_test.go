package shard

import (
	"fmt"
	"reflect"
	"testing"

	"enrichdb/internal/catalog"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

func eventsSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	sc, err := catalog.NewSchema("Events", []catalog.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "kind", Kind: types.KindString},
		{Name: "label", Kind: types.KindString, Derived: true, FeatureCol: "kind", Domain: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// newStores builds an unsharded DB and a sharded store over the same schema,
// the oracle pair most tests compare.
func newStores(t *testing.T, cfg Config) (*storage.DB, storage.BaseTable, *Store, storage.BaseTable) {
	t.Helper()
	un := storage.NewDB()
	ut, err := un.CreateTable(eventsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	sh := New(cfg)
	st, err := sh.CreateBase(eventsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return un, ut, sh, st
}

func insertN(t *testing.T, tbl storage.BaseTable, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		tu := &types.Tuple{Vals: []types.Value{
			types.NewInt(int64(i + 1)),
			types.NewString(fmt.Sprintf("k%d", i%7)),
			types.Null,
		}}
		if _, err := tbl.Insert(tu); err != nil {
			t.Fatal(err)
		}
	}
}

func tupleOrder(tbl storage.Relation) []int64 {
	var out []int64
	for _, tu := range tbl.Tuples() {
		out = append(out, tu.ID)
	}
	return out
}

func TestShardedTuplesMatchUnshardedOrder(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			_, ut, _, st := newStores(t, Config{Shards: shards})
			insertN(t, ut, 100)
			insertN(t, st, 100)
			// Interleave deletes to exercise tombstones + compaction.
			for _, id := range []int64{3, 50, 97, 12, 13, 14, 15, 16, 17, 18} {
				ut.Delete(id)
				st.Delete(id)
			}
			if got, want := tupleOrder(st), tupleOrder(ut); !reflect.DeepEqual(got, want) {
				t.Fatalf("merged order diverged:\n got %v\nwant %v", got, want)
			}
			if st.Len() != ut.Len() {
				t.Fatalf("Len = %d, want %d", st.Len(), ut.Len())
			}
		})
	}
}

func TestShardedAutoIDMirrorsUnsharded(t *testing.T) {
	_, ut, _, st := newStores(t, Config{Shards: 4})
	mk := func(id int64) *types.Tuple {
		return &types.Tuple{ID: id, Vals: []types.Value{types.NewInt(id), types.NewString("x"), types.Null}}
	}
	// Auto, explicit ahead, auto again: ids must track the unsharded contract.
	for _, id := range []int64{0, 0, 42, 0, 7, 0} {
		uid, err := ut.Insert(mk(id))
		if err != nil {
			t.Fatal(err)
		}
		sid, err := st.Insert(mk(id))
		if err != nil {
			t.Fatal(err)
		}
		if uid != sid {
			t.Fatalf("auto-id diverged: unsharded %d, sharded %d", uid, sid)
		}
	}
	// Duplicate id rejected in both.
	if _, err := ut.Insert(mk(42)); err == nil {
		t.Fatal("unsharded accepted duplicate id")
	}
	if _, err := st.Insert(mk(42)); err == nil {
		t.Fatal("sharded accepted duplicate id")
	}
}

func TestShardedGenGuard(t *testing.T) {
	_, _, _, st := newStores(t, Config{Shards: 4})
	insertN(t, st, 10)
	id := int64(5)
	gen := st.Gen(id)
	// Write-back at the current generation lands.
	ok, err := st.UpdateDerivedAt(id, "label", types.NewString("cat"), gen)
	if err != nil || !ok {
		t.Fatalf("UpdateDerivedAt at gen %d: ok=%v err=%v", gen, ok, err)
	}
	// A fixed-column commit bumps the generation...
	newGen, err := st.CommitFixed(id, "kind", types.NewString("z"))
	if err != nil {
		t.Fatal(err)
	}
	if newGen <= gen {
		t.Fatalf("CommitFixed gen %d did not advance past %d", newGen, gen)
	}
	// ...and a stale write-back is a silent no-op.
	ok, err = st.UpdateDerivedAt(id, "label", types.NewString("stale"), gen)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale-generation write-back landed")
	}
	if got := st.Get(id).Vals[2]; got.Kind() != types.KindNull {
		t.Fatalf("derived value after stale write = %v, want NULL (cleared by commit)", got)
	}
}

func TestShardedIndexTuplesMatchUnsharded(t *testing.T) {
	_, ut, _, st := newStores(t, Config{Shards: 4})
	if err := ut.CreateIndex("kind"); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateIndex("kind"); err != nil {
		t.Fatal(err)
	}
	insertN(t, ut, 60)
	insertN(t, st, 60)
	for _, id := range []int64{8, 22, 36} {
		ut.Delete(id)
		st.Delete(id)
	}
	if !st.HasIndex("kind") || st.HasIndex("label") {
		t.Fatal("HasIndex wrong on facade")
	}
	for k := 0; k < 7; k++ {
		key := types.NewString(fmt.Sprintf("k%d", k))
		us, uok := ut.IndexTuples("kind", key)
		ss, sok := st.IndexTuples("kind", key)
		if uok != sok {
			t.Fatalf("IndexTuples ok diverged for %v", key)
		}
		uIDs := make([]int64, len(us))
		for i, tu := range us {
			uIDs[i] = tu.ID
		}
		sIDs := make([]int64, len(ss))
		for i, tu := range ss {
			sIDs[i] = tu.ID
		}
		if !reflect.DeepEqual(uIDs, sIDs) {
			t.Fatalf("index scan for %v diverged:\n got %v\nwant %v", key, sIDs, uIDs)
		}
	}
}

func TestSplitRangePreservesEverything(t *testing.T) {
	sh := New(Config{Shards: 4, Ranges: []int64{1000}})
	st, err := sh.CreateBase(eventsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	insertN(t, st, 200)
	// Enrich a few and commit one so generations are non-trivial.
	for _, id := range []int64{10, 60, 110} {
		if _, err := st.UpdateDerivedAt(id, "label", types.NewString("pre"), st.Gen(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CommitFixed(60, "kind", types.NewString("bumped")); err != nil {
		t.Fatal(err)
	}

	type state struct {
		order []int64
		gens  map[int64]uint64
		vals  map[int64]string
	}
	capture := func() state {
		s := state{gens: map[int64]uint64{}, vals: map[int64]string{}}
		for _, tu := range st.Tuples() {
			s.order = append(s.order, tu.ID)
			s.gens[tu.ID] = tu.Gen
			if tu.Vals[2].Kind() == types.KindString {
				s.vals[tu.ID] = tu.Vals[2].Str()
			}
		}
		return s
	}
	before := capture()
	preVersions := sh.Versions()

	moved, err := sh.SplitRange("Events", 100)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("split at 100 moved nothing (ids 100..200 should re-route)")
	}
	after := capture()
	if !reflect.DeepEqual(before.order, after.order) {
		t.Fatalf("merged order changed across rebalance:\nbefore %v\nafter  %v", before.order, after.order)
	}
	if !reflect.DeepEqual(before.gens, after.gens) {
		t.Fatal("tuple generations changed across rebalance")
	}
	if !reflect.DeepEqual(before.vals, after.vals) {
		t.Fatal("derived values changed across rebalance")
	}
	// The split is a placement commit: the vector strictly advances.
	for i, v := range sh.Versions() {
		if v <= preVersions[i] {
			t.Fatalf("shard %d version %d did not advance past %d", i, v, preVersions[i])
		}
	}
	// Moved tuples answer point reads at their new home.
	if sh.ShardOf("Events", 150) == sh.ShardOf("Events", 50) {
		t.Log("note: split landed 150 and 50 on the same shard (legal under rotation)")
	}
	if st.Get(150) == nil {
		t.Fatal("tuple 150 unreachable after rebalance")
	}
	// Splitting a hash-partitioned table errors.
	hs := New(Config{Shards: 2})
	if _, err := hs.CreateBase(eventsSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := hs.SplitRange("Events", 5); err == nil {
		t.Fatal("SplitRange on hash partitioning should error")
	}
}

func TestFreezeSnapshotIsolationAndVector(t *testing.T) {
	sh := New(Config{Shards: 3})
	st, err := sh.CreateBase(eventsSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	insertN(t, st, 30)
	snap := sh.Freeze().(*Snap)
	vec := snap.Versions()
	if len(vec) != 3 {
		t.Fatalf("vector len %d, want 3", len(vec))
	}
	frozen, err := snap.Table("Events")
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := tupleOrder(st)
	// Mutate the live store: the frozen view must not move.
	insertN(t, st, 10)
	st.Delete(4)
	if got := tupleOrder(frozen); !reflect.DeepEqual(got, wantOrder) {
		t.Fatalf("frozen view drifted:\n got %v\nwant %v", got, wantOrder)
	}
	// The live vector advanced past the frozen one on at least one shard.
	live := sh.Versions()
	advanced := false
	for i := range live {
		if live[i] < vec[i] {
			t.Fatalf("live vector went backwards on shard %d", i)
		}
		if live[i] > vec[i] {
			advanced = true
		}
	}
	if !advanced {
		t.Fatal("vector did not advance after commits")
	}
	// Session-local derived writes are visible through the frozen view only.
	if _, err := frozen.Update(7, "label", types.NewString("local")); err != nil {
		t.Fatal(err)
	}
	if got := frozen.Get(7).Vals[2]; got.Kind() != types.KindString || got.Str() != "local" {
		t.Fatalf("frozen Get(7) derived = %v, want session-local 'local'", got)
	}
	found := false
	for _, tu := range frozen.Tuples() {
		if tu.ID == 7 {
			found = tu.Vals[2].Kind() == types.KindString && tu.Vals[2].Str() == "local"
		}
	}
	if !found {
		t.Fatal("frozen Tuples() does not fold in the session-local write")
	}
	// Gen-guarded write-through landed on the live replica too.
	if got := st.Get(7).Vals[2]; got.Kind() != types.KindString || got.Str() != "local" {
		t.Fatalf("live write-through missing: %v", got)
	}
}
