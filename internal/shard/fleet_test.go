package shard

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/testutil"
	"enrichdb/internal/types"
)

// echoEnricher is a deterministic server-side enricher: every request
// succeeds with a probability vector derived from its TID, after an optional
// delay (atomic, so tests can slow a server mid-flight).
type echoEnricher struct {
	delayNS atomic.Int64
}

func (e *echoEnricher) EnrichBatch(reqs []loose.Request) ([]loose.Response, loose.BatchTiming, error) {
	if d := time.Duration(e.delayNS.Load()); d > 0 {
		time.Sleep(d)
	}
	out := make([]loose.Response, len(reqs))
	for i, r := range reqs {
		out[i] = loose.Response{Relation: r.Relation, TID: r.TID, Attr: r.Attr,
			FnID: r.FnID, Gen: r.Gen, Probs: []float64{float64(r.TID), 1}}
	}
	return out, loose.BatchTiming{}, nil
}

func (e *echoEnricher) Close() error { return nil }

// startServers brings up n enrichment servers and returns their addresses,
// per-server enrichers (for delay injection), server handles and a
// close-everything func. Tests register the leak check FIRST and this
// closer second, so the servers are down before goroutines are counted.
func startServers(t *testing.T, n int) ([]string, []*echoEnricher, []*remote.Server, func()) {
	t.Helper()
	addrs := make([]string, n)
	enrichers := make([]*echoEnricher, n)
	servers := make([]*remote.Server, n)
	for i := 0; i < n; i++ {
		enrichers[i] = &echoEnricher{}
		srv, bound, err := remote.ServeEnricher("127.0.0.1:0", enrichers[i], remote.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i], servers[i] = bound, srv
	}
	return addrs, enrichers, servers, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

func makeReqs(n int) []loose.Request {
	reqs := make([]loose.Request, n)
	for i := range reqs {
		reqs[i] = loose.Request{Relation: "Events", TID: int64(i + 1), Attr: "label", Gen: 1}
	}
	return reqs
}

func checkResponses(t *testing.T, reqs []loose.Request, resps []loose.Response) {
	t.Helper()
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Failed() {
			t.Fatalf("response %d failed: %s", i, r.Err)
		}
		if r.TID != reqs[i].TID {
			t.Fatalf("response %d out of order: TID %d, want %d", i, r.TID, reqs[i].TID)
		}
		if len(r.Probs) != 2 || r.Probs[0] != float64(reqs[i].TID) {
			t.Fatalf("response %d payload wrong: %v", i, r.Probs)
		}
	}
}

func TestFleetBasic(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, _, _, closeAll := startServers(t, 3)
	defer closeAll()
	reg := telemetry.NewRegistry()
	fleet, err := DialFleet(addrs, FleetOptions{Telemetry: reg, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	reqs := makeReqs(500)
	resps, _, err := fleet.EnrichBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkResponses(t, reqs, resps)
	snap := reg.Snapshot()
	if snap.Counters["shard.fleet_batches"] != 1 {
		t.Fatalf("fleet_batches = %d, want 1", snap.Counters["shard.fleet_batches"])
	}
	// 500 requests over 3 shards at sub-batch 64 is at least 8 jobs.
	if jobs := snap.Counters["shard.fleet_jobs"]; jobs < 8 {
		t.Fatalf("fleet_jobs = %d, want >= 8", jobs)
	}
}

func TestJobQueueStealOrder(t *testing.T) {
	q := &jobQueue{jobs: []*job{{home: 0}, {home: 0}, {home: 1}}}
	// A dispatcher takes its own shard's jobs first...
	j, stolen, ok := q.take(1)
	if !ok || stolen || j.home != 1 {
		t.Fatalf("take(1) = home %d stolen %v, want own home-1 job", j.home, stolen)
	}
	// ...and steals the oldest foreign job once its home queue is dry.
	j, stolen, ok = q.take(1)
	if !ok || !stolen || j.home != 0 {
		t.Fatalf("take(1) on foreign queue = home %d stolen %v, want oldest home-0 steal", j.home, stolen)
	}
	if _, _, ok := q.take(0); !ok {
		t.Fatal("last job unreachable")
	}
	if _, _, ok := q.take(0); ok {
		t.Fatal("empty queue returned a job")
	}
}

func TestFleetWorkStealing(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, _, _, closeAll := startServers(t, 2)
	defer closeAll()
	reg := telemetry.NewRegistry()
	// Sub-batch of 1 so every request is its own job, and every TID chosen
	// to hash home to shard 0 — dispatcher 1 has no home work, so each job
	// it drains is deterministically a steal.
	fleet, err := DialFleet(addrs, FleetOptions{Telemetry: reg, HedgeDelay: -1, SubBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	var reqs []loose.Request
	for tid := int64(1); len(reqs) < 200; tid++ {
		if fleet.part.Route(types.NewInt(tid)) != 0 {
			continue
		}
		reqs = append(reqs, loose.Request{Relation: "Events", TID: tid, Attr: "label", Gen: 1})
	}
	resps, _, err := fleet.EnrichBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkResponses(t, reqs, resps)
	snap := reg.Snapshot()
	if snap.Counters["shard.fleet_steals"] == 0 {
		t.Fatal("idle dispatcher never stole from a loaded shard's backlog")
	}
}

func TestFleetHedgeBeatsStraggler(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, enrichers, _, closeAll := startServers(t, 2)
	defer closeAll()
	// Server 0 is a straggler; ties route to the lowest index, so the single
	// job's primary is 0 and the hedge must win on 1.
	enrichers[0].delayNS.Store(int64(400 * time.Millisecond))
	reg := telemetry.NewRegistry()
	fleet, err := DialFleet(addrs, FleetOptions{Telemetry: reg, HedgeDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reqs := makeReqs(4)
	start := time.Now()
	resps, _, err := fleet.EnrichBatch(reqs)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	checkResponses(t, reqs, resps)
	if wall >= 400*time.Millisecond {
		t.Fatalf("hedge did not beat the straggler: wall %v", wall)
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.hedge_launched"] == 0 {
		t.Fatal("no hedge launched against a 400ms straggler with a 10ms delay")
	}
	if snap.Counters["shard.hedge_wins"] == 0 {
		t.Fatal("hedge launched but never won")
	}
	// Close the fleet, then let the leak check prove the losing hedge
	// goroutine (still waiting on the slow server) drains instead of leaking.
	fleet.Close()
}

func TestFleetHedgeDisabled(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, enrichers, _, closeAll := startServers(t, 2)
	defer closeAll()
	enrichers[0].delayNS.Store(int64(60 * time.Millisecond))
	reg := telemetry.NewRegistry()
	fleet, err := DialFleet(addrs, FleetOptions{Telemetry: reg, HedgeDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	reqs := makeReqs(4)
	resps, _, err := fleet.EnrichBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkResponses(t, reqs, resps)
	if got := reg.Snapshot().Counters["shard.hedge_launched"]; got != 0 {
		t.Fatalf("hedging disabled but %d hedges launched", got)
	}
}

func TestFleetFailoverToSurvivors(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, _, servers, closeAll := startServers(t, 3)
	defer closeAll()
	reg := telemetry.NewRegistry()
	fleet, err := DialFleet(addrs, FleetOptions{
		Telemetry:  reg,
		HedgeDelay: -1,
		Client:     remote.Options{MaxRetries: -1, CallTimeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	// Kill one server: its share of the batch fails over to the survivors
	// and the whole batch still succeeds.
	servers[1].Close()
	reqs := makeReqs(300)
	resps, _, err := fleet.EnrichBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkResponses(t, reqs, resps)
	if got := reg.Snapshot().Counters["shard.fleet_failovers"]; got == 0 {
		t.Fatal("a dead server produced zero failovers")
	}
}

func TestFleetTotalFailureDegrades(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, _, servers, closeAll := startServers(t, 2)
	defer closeAll()
	fleet, err := DialFleet(addrs, FleetOptions{
		HedgeDelay: -1,
		Client:     remote.Options{MaxRetries: -1, CallTimeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	for _, s := range servers {
		s.Close()
	}
	reqs := makeReqs(10)
	resps, _, err := fleet.EnrichBatch(reqs)
	if err != nil {
		t.Fatalf("total backend failure must degrade per request, got batch error %v", err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resps), len(reqs))
	}
	for i, r := range resps {
		if !r.Failed() {
			t.Fatalf("response %d succeeded with every backend down", i)
		}
		if r.TID != reqs[i].TID {
			t.Fatalf("degraded response %d misaligned", i)
		}
	}
}

func TestFleetDialErrors(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	if _, err := DialFleet(nil, FleetOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := DialFleet([]string{"127.0.0.1:1"}, FleetOptions{
		Client: remote.Options{MaxRetries: -1, CallTimeout: 200 * time.Millisecond},
	}); err == nil {
		t.Fatal("unreachable backend accepted")
	}
}

func TestFleetManyBatchesNoLeak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	addrs, enrichers, _, closeAll := startServers(t, 3)
	defer closeAll()
	enrichers[2].delayNS.Store(int64(5 * time.Millisecond))
	fleet, err := DialFleet(addrs, FleetOptions{HedgeDelay: time.Millisecond, SubBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 20; b++ {
		reqs := makeReqs(64)
		resps, _, err := fleet.EnrichBatch(reqs)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		checkResponses(t, reqs, resps)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestFleetLeastLoadedPick(t *testing.T) {
	f := &Fleet{backends: []*backend{{}, {}, {}}}
	f.backends[0].inflight.Store(5)
	f.backends[1].inflight.Store(1)
	f.backends[2].inflight.Store(1)
	if got := f.pick(0); got != 1 {
		t.Fatalf("pick = %d, want least-loaded lowest-index 1", got)
	}
	if got := f.pick(1 << 1); got != 2 {
		t.Fatalf("pick excluding 1 = %d, want 2", got)
	}
	if got := f.pick(0b111); got != -1 {
		t.Fatalf("pick with all excluded = %d, want -1", got)
	}
	_ = fmt.Sprint() // keep fmt import if asserts change
}
