package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"enrichdb/internal/catalog"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

// Config parameterizes a sharded store.
type Config struct {
	// Shards is the number of in-process shard replicas (min 1).
	Shards int
	// Ranges, when non-empty, range-partitions every table by tuple id with
	// these initial split points; empty means hash partitioning by id.
	Ranges []int64
}

// Store is a sharded storage.Store: every table is partitioned across N
// in-process *storage.DB replicas by a per-table partitioner. Reads merge
// the replicas in global insertion-sequence order, so every plan shape —
// scans, index scans, joins, aggregates, IVM deltas — sees exactly the
// sequence an unsharded table would produce; writes route to the owning
// replica and bump that shard's commit counter (the generation vector
// snapshots carry).
type Store struct {
	cfg Config
	dbs []*storage.DB

	mu     sync.RWMutex
	tables map[string]*Table

	seq      atomic.Uint64 // global insertion sequence across all tables
	versions []atomic.Uint64
}

var _ storage.Store = (*Store)(nil)

// New builds an empty sharded store.
func New(cfg Config) *Store {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	dbs := make([]*storage.DB, cfg.Shards)
	for i := range dbs {
		dbs[i] = storage.NewDB()
	}
	return &Store{
		cfg:      cfg,
		dbs:      dbs,
		tables:   make(map[string]*Table),
		versions: make([]atomic.Uint64, cfg.Shards),
	}
}

// NumShards returns the replica count.
func (s *Store) NumShards() int { return len(s.dbs) }

// ShardSource returns shard i's replica as a query source (the scatter-
// gather executor plans per shard against these).
func (s *Store) ShardSource(i int) storage.Source { return s.dbs[i] }

// Catalog returns the store's catalog. Every replica registers the same
// schemas; shard 0's catalog is authoritative.
func (s *Store) Catalog() *catalog.Catalog { return s.dbs[0].Catalog() }

// CreateBase registers the schema on every replica and returns the sharded
// table facade.
func (s *Store) CreateBase(sc *catalog.Schema) (storage.BaseTable, error) {
	reps := make([]*storage.Table, len(s.dbs))
	for i, db := range s.dbs {
		t, err := db.CreateTable(sc)
		if err != nil {
			return nil, err
		}
		reps[i] = t
	}
	var part Partitioner
	if len(s.cfg.Ranges) > 0 {
		part = NewRangePartitioner(len(s.dbs), s.cfg.Ranges)
	} else {
		part = NewHashPartitioner(len(s.dbs))
	}
	tbl := &Table{store: s, schema: sc, part: part, reps: reps, nextID: 1}
	s.mu.Lock()
	s.tables[sc.Name] = tbl
	s.mu.Unlock()
	return tbl, nil
}

// Table resolves the named relation.
func (s *Store) Table(name string) (storage.Relation, error) {
	return s.BaseTable(name)
}

// BaseTable resolves the named sharded table facade.
func (s *Store) BaseTable(name string) (storage.BaseTable, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("shard: unknown relation %s", name)
	}
	return t, nil
}

// Stats aggregates the storage counters across every replica.
func (s *Store) Stats() storage.TableStats {
	var out storage.TableStats
	for _, db := range s.dbs {
		ts := db.Stats()
		out.Inserts += ts.Inserts
		out.Deletes += ts.Deletes
		out.Updates += ts.Updates
		out.Compactions += ts.Compactions
		out.Live += ts.Live
		out.Tombstones += ts.Tombstones
		out.Indexes += ts.Indexes
	}
	return out
}

// Versions returns the per-shard commit counters — the generation vector a
// snapshot is stamped with. Index i counts commits (inserts, deletes,
// fixed-attribute updates, rebalance splits) that landed on shard i.
func (s *Store) Versions() []uint64 {
	out := make([]uint64, len(s.versions))
	for i := range s.versions {
		out[i] = s.versions[i].Load()
	}
	return out
}

// ShardOf returns the shard currently owning the tuple id of the named
// relation (-1 for unknown relations).
func (s *Store) ShardOf(name string, id int64) int {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return -1
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.part.Route(types.NewInt(id))
}

// SplitRange rebalances the named range-partitioned table: the id range
// containing `at` splits at that boundary and tuples whose route changed
// move to their new replica, preserving id, generation and insertion
// sequence — so merged read order, enrichment state keys and gen guards are
// all unaffected by placement. Returns the number of tuples moved.
// Concurrent merged reads and routed writes are excluded for the duration
// (the facade's lock); per-shard scatter reads of other tables proceed.
func (s *Store) SplitRange(name string, at int64) (int, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("shard: unknown relation %s", name)
	}
	moved, err := t.splitRange(at)
	if err != nil {
		return moved, err
	}
	// A split is a placement commit on every shard: snapshots taken before
	// it carry a strictly older generation vector.
	for i := range s.versions {
		s.versions[i].Add(1)
	}
	return moved, nil
}

// Freeze snapshots every replica and returns a merged point-in-time Source
// stamped with the generation vector. The caller serializes Freeze against
// commits (enrichdb holds its commit lock), so the vector and the views are
// one consistent cut.
func (s *Store) Freeze() storage.Source {
	s.mu.RLock()
	tables := make(map[string]*Table, len(s.tables))
	for k, v := range s.tables {
		tables[k] = v
	}
	s.mu.RUnlock()
	sn := &Snap{
		cat:      s.Catalog(),
		shards:   make([]storage.Source, len(s.dbs)),
		merged:   make(map[string]*mergedView, len(tables)),
		versions: s.Versions(),
	}
	for i, db := range s.dbs {
		sn.shards[i] = db.Snapshot()
	}
	for name, t := range tables {
		t.mu.RLock()
		part := t.part.Clone()
		t.mu.RUnlock()
		views := make([]storage.Relation, len(sn.shards))
		for i := range sn.shards {
			v, err := sn.shards[i].Table(name)
			if err != nil {
				continue
			}
			views[i] = v
		}
		sn.merged[name] = &mergedView{schema: t.schema, part: part, views: views}
	}
	return sn
}

// Table is the sharded facade of one relation: a storage.BaseTable that
// routes point operations through the partitioner and merges full reads
// across replicas in insertion-sequence order. The facade lock excludes
// rebalancing from merged reads and routed writes; per-replica locks handle
// everything else.
type Table struct {
	store  *Store
	schema *catalog.Schema

	mu     sync.RWMutex
	part   Partitioner
	reps   []*storage.Table
	nextID int64
}

var _ storage.BaseTable = (*Table)(nil)

// Schema returns the relation's schema.
func (t *Table) Schema() *catalog.Schema { return t.schema }

// route returns the replica owning the id under the current partitioner.
// Caller holds t.mu (read or write).
func (t *Table) route(id int64) *storage.Table {
	return t.reps[t.part.Route(types.NewInt(id))]
}

// Insert routes the tuple to its owning replica, mirroring the unsharded
// auto-id contract (zero id assigns the next id; explicit ids advance it)
// and stamping the store-global insertion sequence.
func (t *Table) Insert(tu *types.Tuple) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tu.ID == 0 {
		tu.ID = t.nextID
	}
	if tu.ID >= t.nextID {
		t.nextID = tu.ID + 1
	}
	if tu.Seq == 0 {
		tu.Seq = t.store.seq.Add(1)
	}
	shard := t.part.Route(types.NewInt(tu.ID))
	id, err := t.reps[shard].Insert(tu)
	if err != nil {
		return 0, err
	}
	t.store.versions[shard].Add(1)
	return id, nil
}

// Get returns the tuple by id from its owning replica.
func (t *Table) Get(id int64) *types.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.route(id).Get(id)
}

// Update routes a single-column update; fixed-column updates count as
// commits on the owning shard.
func (t *Table) Update(id int64, col string, v types.Value) (types.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	shard := t.part.Route(types.NewInt(id))
	old, err := t.reps[shard].Update(id, col, v)
	if err != nil {
		return old, err
	}
	if c := t.schema.Col(col); c != nil && !c.Derived {
		t.store.versions[shard].Add(1)
	}
	return old, nil
}

// CommitFixed routes the atomic fixed+derived-clear swap.
func (t *Table) CommitFixed(id int64, col string, v types.Value) (uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	shard := t.part.Route(types.NewInt(id))
	gen, err := t.reps[shard].CommitFixed(id, col, v)
	if err != nil {
		return gen, err
	}
	t.store.versions[shard].Add(1)
	return gen, nil
}

// UpdateDerivedAt routes the gen-guarded derived write-back. Not a commit:
// the generation vector is untouched.
func (t *Table) UpdateDerivedAt(id int64, col string, v types.Value, gen uint64) (bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.route(id).UpdateDerivedAt(id, col, v, gen)
}

// Gen returns the tuple's generation from its owning replica.
func (t *Table) Gen(id int64) uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.route(id).Gen(id)
}

// Delete routes the delete and counts the commit.
func (t *Table) Delete(id int64) *types.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	shard := t.part.Route(types.NewInt(id))
	tu := t.reps[shard].Delete(id)
	if tu != nil {
		t.store.versions[shard].Add(1)
	}
	return tu
}

// Len sums the replicas' live counts.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, r := range t.reps {
		n += r.Len()
	}
	return n
}

// Tuples returns all live tuples merged across replicas in insertion order.
// Per-replica slabs are sequence-ascending except after a rebalance (moves
// append at the destination's tail), so the merge sorts by Seq — which is
// exactly global insertion order, byte-identical to the unsharded slab.
func (t *Table) Tuples() []*types.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return mergeTuples(t.reps)
}

// mergeTuples gathers every replica's live tuples and sorts by insertion
// sequence.
func mergeTuples(reps []*storage.Table) []*types.Tuple {
	var out []*types.Tuple
	for _, r := range reps {
		out = append(out, r.Tuples()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Scan walks the merged insertion order.
func (t *Table) Scan(fn func(*types.Tuple) bool) {
	for _, tu := range t.Tuples() {
		if !fn(tu) {
			return
		}
	}
}

// IDs returns all ids in merged insertion order.
func (t *Table) IDs() []int64 {
	tus := t.Tuples()
	out := make([]int64, len(tus))
	for i, tu := range tus {
		out[i] = tu.ID
	}
	return out
}

// CreateIndex builds the index on every replica.
func (t *Table) CreateIndex(col string) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.reps {
		if err := r.CreateIndex(col); err != nil {
			return err
		}
	}
	return nil
}

// HasIndex reports whether the column is indexed (identically on every
// replica by construction).
func (t *Table) HasIndex(col string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.reps[0].HasIndex(col)
}

// IndexTuples merges the replicas' index lookups in insertion order —
// the same order an unsharded index scan returns.
func (t *Table) IndexTuples(col string, v types.Value) ([]*types.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*types.Tuple
	for _, r := range t.reps {
		tus, ok := r.IndexTuples(col, v)
		if !ok {
			return nil, false
		}
		out = append(out, tus...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, true
}

// splitRange applies a range split and moves re-routed tuples, preserving
// id, generation and sequence.
func (t *Table) splitRange(at int64) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rp, ok := t.part.(*RangePartitioner)
	if !ok {
		return 0, fmt.Errorf("shard: %s is not range-partitioned (%s)", t.schema.Name, t.part.Desc())
	}
	next := rp.Clone().(*RangePartitioner)
	next.SplitAt(at)
	moved := 0
	for from, r := range t.reps {
		for _, tu := range r.Tuples() {
			to := next.Route(types.NewInt(tu.ID))
			if to == from {
				continue
			}
			// Move preserves the tuple image verbatim: same id, same Gen (the
			// enrichment gen guard), same Seq (the merged read order). The
			// enrichment manager's state is keyed by (relation, id) — placement
			// is invisible to it.
			if got := r.Delete(tu.ID); got == nil {
				return moved, fmt.Errorf("shard: %s: tuple %d vanished during rebalance", t.schema.Name, tu.ID)
			}
			if _, err := t.reps[to].Insert(tu); err != nil {
				return moved, fmt.Errorf("shard: %s: rebalance reinsert %d: %w", t.schema.Name, tu.ID, err)
			}
			moved++
		}
	}
	t.part = next
	return moved, nil
}
