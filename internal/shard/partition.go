// Package shard partitions slab tables across N in-process shard replicas
// and fans query execution and loose-design enrichment out over them: a
// hash/range partitioner routes tuples to replicas, a scatter-gather
// executor runs the existing plan shape per shard and merges results in
// deterministic insertion-sequence order (byte-identical to unsharded
// output), and a fleet client spreads enrichment batches over N servers
// with least-loaded routing, work stealing and hedged requests.
package shard

import (
	"fmt"
	"sort"

	"enrichdb/internal/types"
)

// Partitioner maps a partition-key value to a shard in [0, Shards()).
// Implementations are immutable from the router's point of view: rebalancing
// produces a new partitioner via Clone+mutate so in-flight routing decisions
// stay consistent (the store swaps the partitioner under its table lock).
type Partitioner interface {
	Shards() int
	// Route returns the owning shard for the key. Routing is total: every
	// value, including NULL, NaN and -0.0, lands on exactly one shard, and
	// values that compare key-equal (types.KeyEqual) route identically.
	Route(key types.Value) int
	// Clone returns an independent deep copy.
	Clone() Partitioner
	// Desc renders the partitioning scheme for diagnostics.
	Desc() string
}

// HashPartitioner routes by the shared types.Hasher, so key normalization
// (-0.0 folding, kind tagging) is identical to the engine's hash join and
// hash index keys by construction.
type HashPartitioner struct {
	N int
}

// NewHashPartitioner returns a hash partitioner over n shards.
func NewHashPartitioner(n int) *HashPartitioner {
	if n < 1 {
		n = 1
	}
	return &HashPartitioner{N: n}
}

// Shards returns the shard count.
func (h *HashPartitioner) Shards() int { return h.N }

// Route hashes the key and reduces it modulo the shard count.
func (h *HashPartitioner) Route(key types.Value) int {
	return int(types.HashValue(key) % uint64(h.N))
}

// Clone returns a copy.
func (h *HashPartitioner) Clone() Partitioner { return &HashPartitioner{N: h.N} }

// Desc renders the scheme.
func (h *HashPartitioner) Desc() string { return fmt.Sprintf("hash(%d)", h.N) }

// RangePartitioner routes integer keys by sorted split points: segment i
// covers [splits[i-1], splits[i]) with open ends, and assign[i] names the
// shard owning segment i — so a split point's boundary key belongs to
// exactly one segment (the upper one). Non-integer keys (the partition key
// of this system is the tuple id, so they are rare) fall back to hashing,
// keeping routing total.
type RangePartitioner struct {
	splits []int64 // sorted ascending, distinct
	assign []int   // len(splits)+1 entries, each in [0, n)
	n      int
	// rot deterministically rotates the shard assignment of segments born
	// from SplitAt, so repeated splits spread across shards without
	// consulting load (replayable: same split sequence, same assignment).
	rot int
}

// NewRangePartitioner builds a range partitioner over n shards with the
// given initial split points (sorted, deduplicated). Segments are assigned
// round-robin.
func NewRangePartitioner(n int, splits []int64) *RangePartitioner {
	if n < 1 {
		n = 1
	}
	ss := append([]int64(nil), splits...)
	sort.Slice(ss, func(i, j int) bool { return ss[i] < ss[j] })
	dst := 0
	for i, s := range ss {
		if i == 0 || s != ss[dst-1] {
			ss[dst] = s
			dst++
		}
	}
	ss = ss[:dst]
	assign := make([]int, len(ss)+1)
	for i := range assign {
		assign[i] = i % n
	}
	return &RangePartitioner{splits: ss, assign: assign, n: n}
}

// Shards returns the shard count.
func (r *RangePartitioner) Shards() int { return r.n }

// segment returns the index of the segment containing k: the number of
// split points ≤ k, so a boundary key belongs to the segment it opens.
func (r *RangePartitioner) segment(k int64) int {
	return sort.Search(len(r.splits), func(i int) bool { return k < r.splits[i] })
}

// Route returns the shard owning the key's segment. Integer keys route by
// range; everything else routes by hash (NaN/-0.0 normalization identical
// to types.Hasher by construction).
func (r *RangePartitioner) Route(key types.Value) int {
	if key.Kind() == types.KindInt {
		return r.assign[r.segment(key.Int())]
	}
	return int(types.HashValue(key) % uint64(r.n))
}

// SplitAt splits the segment containing `at` at that boundary: keys below
// keep their shard, keys at or above move to the next shard in a
// deterministic rotation. Returns the shard that now owns the upper part.
// Splitting at an existing split point is a no-op (the boundary already
// separates segments) and returns that segment's owner.
func (r *RangePartitioner) SplitAt(at int64) int {
	seg := r.segment(at)
	if seg > 0 && r.splits[seg-1] == at {
		return r.assign[seg]
	}
	r.rot++
	to := (r.assign[seg] + r.rot) % r.n
	r.splits = append(r.splits, 0)
	copy(r.splits[seg+1:], r.splits[seg:])
	r.splits[seg] = at
	r.assign = append(r.assign, 0)
	copy(r.assign[seg+1:], r.assign[seg:])
	r.assign[seg+1] = to
	return to
}

// Clone returns a deep copy.
func (r *RangePartitioner) Clone() Partitioner {
	return &RangePartitioner{
		splits: append([]int64(nil), r.splits...),
		assign: append([]int(nil), r.assign...),
		n:      r.n,
		rot:    r.rot,
	}
}

// Desc renders the scheme.
func (r *RangePartitioner) Desc() string {
	return fmt.Sprintf("range(%d, splits=%v, assign=%v)", r.n, r.splits, r.assign)
}
