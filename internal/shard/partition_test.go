package shard

import (
	"math"
	"testing"

	"enrichdb/internal/types"
)

func TestHashPartitionerParityWithEngineHasher(t *testing.T) {
	p := NewHashPartitioner(4)
	vals := []types.Value{
		types.NewInt(0), types.NewInt(-1), types.NewInt(math.MaxInt64),
		types.NewFloat(0.0), types.NewFloat(math.Copysign(0, -1)),
		types.NewFloat(math.NaN()),
		types.NewString(""), types.NewString("k"),
		types.NewBool(true), types.Null,
		types.NewVector([]float64{1, math.Copysign(0, -1)}),
	}
	for _, v := range vals {
		want := int(types.HashValue(v) % 4)
		if got := p.Route(v); got != want {
			t.Errorf("Route(%v) = %d, want engine-hash shard %d", v, got, want)
		}
	}
	// -0.0 and +0.0 are key-equal, so they must co-locate.
	if p.Route(types.NewFloat(0)) != p.Route(types.NewFloat(math.Copysign(0, -1))) {
		t.Errorf("-0.0 and +0.0 routed to different shards")
	}
}

func TestRangePartitionerBoundaries(t *testing.T) {
	p := NewRangePartitioner(3, []int64{10, 20})
	// Segments: (-inf,10)→0, [10,20)→1, [20,inf)→2 (round-robin assign).
	cases := []struct {
		k    int64
		want int
	}{
		{-5, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {1 << 40, 2},
	}
	for _, c := range cases {
		if got := p.Route(types.NewInt(c.k)); got != c.want {
			t.Errorf("Route(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	// Non-integer keys hash-fallback but stay in range.
	for _, v := range []types.Value{types.NewString("x"), types.Null, types.NewFloat(1.5)} {
		if got := p.Route(v); got < 0 || got >= 3 {
			t.Errorf("Route(%v) = %d out of range", v, got)
		}
	}
}

func TestRangePartitionerDedupsAndSortsSplits(t *testing.T) {
	p := NewRangePartitioner(2, []int64{30, 10, 30, 20, 10})
	if len(p.splits) != 3 || p.splits[0] != 10 || p.splits[1] != 20 || p.splits[2] != 30 {
		t.Fatalf("splits = %v, want [10 20 30]", p.splits)
	}
}

func TestSplitAtMovesOnlyUpperKeys(t *testing.T) {
	p := NewRangePartitioner(4, []int64{100})
	before := make(map[int64]int)
	for k := int64(0); k < 200; k++ {
		before[k] = p.Route(types.NewInt(k))
	}
	to := p.SplitAt(50)
	if to < 0 || to >= 4 {
		t.Fatalf("SplitAt returned out-of-range shard %d", to)
	}
	for k := int64(0); k < 200; k++ {
		got := p.Route(types.NewInt(k))
		switch {
		case k < 50:
			if got != before[k] {
				t.Fatalf("key %d below split moved: %d -> %d", k, before[k], got)
			}
		case k < 100:
			if got != to {
				t.Fatalf("key %d in split upper half on shard %d, want %d", k, got, to)
			}
		default:
			if got != before[k] {
				t.Fatalf("key %d outside split segment moved: %d -> %d", k, before[k], got)
			}
		}
	}
	// Splitting at an existing boundary is a no-op.
	clone := p.Clone().(*RangePartitioner)
	owner := p.SplitAt(100)
	if owner != clone.Route(types.NewInt(100)) {
		t.Errorf("re-split at existing boundary changed the owner")
	}
	if len(p.splits) != len(clone.splits) {
		t.Errorf("re-split at existing boundary added a split point")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewRangePartitioner(2, []int64{10})
	c := p.Clone().(*RangePartitioner)
	p.SplitAt(5)
	if len(c.splits) != 1 {
		t.Fatalf("clone observed the original's split: %v", c.splits)
	}
	for k := int64(-20); k < 40; k++ {
		cc := c.Clone()
		if cc.Route(types.NewInt(k)) != c.Route(types.NewInt(k)) {
			t.Fatalf("clone routes key %d differently", k)
		}
	}
}
