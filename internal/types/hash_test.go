package types

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws a value from a small universe so collisions in the
// *semantic* sense (equal values) occur often.
func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(5)))
	case 2:
		return NewFloat([]float64{0, math.Copysign(0, -1), 1.5, -2.25}[r.Intn(4)])
	case 3:
		return NewString([]string{"", "a", "ab", "b"}[r.Intn(4)])
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewVector([]float64{float64(r.Intn(3)), float64(r.Intn(2))})
	}
}

// TestKeyEqualMatchesKeyString checks the contract the hashed paths rely on:
// KeyEqual(a, b) ⇔ a.Key() == b.Key(), and KeyEqual ⇒ equal hashes.
func TestKeyEqualMatchesKeyString(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b := randValue(r), randValue(r)
		keyEq := a.Key() == b.Key()
		if got := KeyEqual(a, b); got != keyEq {
			t.Fatalf("KeyEqual(%v, %v) = %v, Key strings equal = %v", a, b, got, keyEq)
		}
		if keyEq && HashValue(a) != HashValue(b) {
			t.Fatalf("equal keys %v, %v hash differently", a, b)
		}
	}
}

// TestHasherKindTags checks cross-kind values that render alike still hash
// (and compare) distinctly.
func TestHasherKindTags(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewBool(true)},
		{NewInt(1), NewFloat(1)},
		{NewInt(1), NewString("1")},
		{NewString("1"), NewFloat(1)},
	}
	for _, p := range pairs {
		if KeyEqual(p[0], p[1]) {
			t.Errorf("KeyEqual(%v, %v) crossed kinds", p[0], p[1])
		}
		if HashValue(p[0]) == HashValue(p[1]) {
			t.Errorf("HashValue(%v) == HashValue(%v): kinds not tagged", p[0], p[1])
		}
	}
}

// TestHasherNegativeZero: -0.0 and +0.0 must share hash and key, matching
// Compare.
func TestHasherNegativeZero(t *testing.T) {
	pz, nz := NewFloat(0), NewFloat(math.Copysign(0, -1))
	if !KeyEqual(pz, nz) {
		t.Fatal("KeyEqual(+0.0, -0.0) = false")
	}
	if HashValue(pz) != HashValue(nz) {
		t.Fatal("+0.0 and -0.0 hash differently")
	}
}

// TestHasherComposite checks composite keys stay unambiguous across value
// boundaries ("ab","c" vs "a","bc").
func TestHasherComposite(t *testing.T) {
	h1 := NewHasher()
	h1.WriteValue(NewString("ab"))
	h1.WriteValue(NewString("c"))
	h2 := NewHasher()
	h2.WriteValue(NewString("a"))
	h2.WriteValue(NewString("bc"))
	if h1.Sum64() == h2.Sum64() {
		t.Fatal("composite string keys collide across boundaries")
	}
}

// TestHasherNullTag: NULLs share one hash key regardless of origin.
func TestHasherNullTag(t *testing.T) {
	if !KeyEqual(Null, Value{}) || HashValue(Null) != HashValue(Value{}) {
		t.Fatal("NULL values must share one hash key")
	}
}
