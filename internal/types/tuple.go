package types

import (
	"fmt"
	"strings"
)

// Tuple is a stored row of a base relation. ID is the paper's mandatory id
// attribute: every relation carries one so that enrichment state can be keyed
// per tuple.
type Tuple struct {
	ID   int64
	Vals []Value
}

// Clone returns a deep-enough copy of the tuple: the value slice is copied so
// the clone can be mutated independently. Vector payloads are shared (they
// are immutable by convention).
func (t *Tuple) Clone() *Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return &Tuple{ID: t.ID, Vals: vals}
}

// String renders the tuple for debugging.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("#%d(%s)", t.ID, strings.Join(parts, ", "))
}
