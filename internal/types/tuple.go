package types

import (
	"fmt"
	"strings"
)

// Tuple is a stored row of a base relation. ID is the paper's mandatory id
// attribute: every relation carries one so that enrichment state can be keyed
// per tuple. Gen is the tuple's fixed-data generation: storage bumps it every
// time a fixed (non-derived) attribute changes, which invalidates enrichment
// computed from the previous generation's feature vectors (§3.3.5's state
// reset). Derived-attribute writes never change Gen.
//
// Published tuples are immutable: storage replaces the tuple pointer on every
// update (copy-on-write) instead of mutating Vals in place, so a scan's
// snapshot of tuple pointers stays consistent under concurrent writers.
type Tuple struct {
	ID  int64
	Gen uint64
	// Seq is the tuple's global insertion sequence number. Unsharded storage
	// leaves it zero (slab order already is insertion order); sharded storage
	// assigns it at insert so a k-way merge of per-shard slabs by Seq
	// reproduces the exact unsharded insertion order, independent of how the
	// partitioner placed (or later rebalanced) the tuple.
	Seq  uint64
	Vals []Value
}

// Clone returns a deep-enough copy of the tuple: the value slice is copied so
// the clone can be mutated independently. Vector payloads are shared (they
// are immutable by convention).
func (t *Tuple) Clone() *Tuple {
	vals := make([]Value, len(t.Vals))
	copy(vals, t.Vals)
	return &Tuple{ID: t.ID, Gen: t.Gen, Seq: t.Seq, Vals: vals}
}

// String renders the tuple for debugging.
func (t *Tuple) String() string {
	parts := make([]string, len(t.Vals))
	for i, v := range t.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("#%d(%s)", t.ID, strings.Join(parts, ", "))
}
