package types

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestValueGobRoundTrip(t *testing.T) {
	values := []Value{
		Null,
		NewInt(0), NewInt(-42), NewInt(1 << 60),
		NewFloat(0), NewFloat(-3.25), NewFloat(1e300),
		NewString(""), NewString("héllo 'quoted'"),
		NewBool(true), NewBool(false),
		NewVector(nil), NewVector([]float64{1.5, -2.5, 0}),
	}
	for _, v := range values {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			t.Fatalf("encode %s: %v", v, err)
		}
		var got Value
		if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
			t.Fatalf("decode %s: %v", v, err)
		}
		if got.Kind() != v.Kind() {
			t.Fatalf("%s: kind %v -> %v", v, v.Kind(), got.Kind())
		}
		if v.IsNull() {
			continue
		}
		if v.Kind() == KindVector {
			if !got.Equal(v) && len(v.Vector()) > 0 {
				t.Fatalf("vector round trip: %s -> %s", v, got)
			}
			continue
		}
		if !got.Equal(v) {
			t.Fatalf("round trip: %s -> %s", v, got)
		}
	}
}

func TestValueGobDecodeErrors(t *testing.T) {
	var v Value
	if err := v.GobDecode(nil); err == nil {
		t.Error("empty payload must fail")
	}
	if err := v.GobDecode([]byte{99}); err == nil {
		t.Error("unknown kind must fail")
	}
	if err := v.GobDecode([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float must fail")
	}
	if err := v.GobDecode([]byte{byte(KindVector), 1, 2, 3}); err == nil {
		t.Error("misaligned vector must fail")
	}
	if err := v.GobDecode([]byte{byte(KindInt)}); err == nil {
		t.Error("missing varint must fail")
	}
}
