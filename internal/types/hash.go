package types

import "math"

// Hasher is an incremental FNV-1a hash over Value payloads. It replaces the
// throwaway string keys (Value.Key concatenations) the join, semi-join, index
// and IVM paths used to build per row: callers feed values in and take a
// uint64, allocating nothing. Hash equality is necessary but not sufficient —
// consumers must confirm candidate matches with KeyEqual (collision buckets).
//
// The hash is injective-intent-compatible with Value.Key(): two values
// receive the same hash stream exactly when their Key() strings are equal
// (kinds are tagged, -0.0 folds into +0.0 for FLOAT, NULLs share one tag).
type Hasher uint64

const (
	fnvOffset64 Hasher = 14695981039346656037
	fnvPrime64  Hasher = 1099511628211
)

// NewHasher returns a hasher at the FNV-1a offset basis.
func NewHasher() Hasher { return fnvOffset64 }

// Fold folds one byte into the hash. (Named to avoid the io.ByteWriter
// signature convention; hashing cannot fail, so no error return.)
func (h *Hasher) Fold(b byte) {
	*h = (*h ^ Hasher(b)) * fnvPrime64
}

// WriteUint64 folds eight bytes (little-endian) into the hash.
func (h *Hasher) WriteUint64(x uint64) {
	v := *h
	for i := 0; i < 8; i++ {
		v = (v ^ Hasher(byte(x))) * fnvPrime64
		x >>= 8
	}
	*h = v
}

// WriteString folds a length-prefixed string into the hash. The prefix keeps
// composite keys unambiguous ("ab"+"c" vs "a"+"bc").
func (h *Hasher) WriteString(s string) {
	h.WriteUint64(uint64(len(s)))
	v := *h
	for i := 0; i < len(s); i++ {
		v = (v ^ Hasher(s[i])) * fnvPrime64
	}
	*h = v
}

// WriteValue folds one value into the hash, tagged by kind so INT 1, BOOL
// true and STRING "1" hash differently (mirroring Value.Key).
func (h *Hasher) WriteValue(v Value) {
	h.Fold(byte(v.kind))
	switch v.kind {
	case KindNull:
		// Tag byte alone: all NULLs share one hash, as Key() shares "∅".
	case KindInt, KindBool:
		h.WriteUint64(uint64(v.i))
	case KindFloat:
		f := v.f
		if f == 0 {
			f = 0 // fold -0.0 into +0.0, matching Compare and Key
		}
		h.WriteUint64(math.Float64bits(f))
	case KindString:
		h.WriteString(v.s)
	case KindVector:
		h.WriteUint64(uint64(len(v.vec)))
		for _, f := range v.vec {
			if f == 0 {
				f = 0 // fold -0.0 per element, matching Key and KeyEqual
			}
			h.WriteUint64(math.Float64bits(f))
		}
	}
}

// Sum64 returns the current hash.
func (h Hasher) Sum64() uint64 { return uint64(h) }

// HashValue hashes a single value.
func HashValue(v Value) uint64 {
	h := NewHasher()
	h.WriteValue(v)
	return h.Sum64()
}

// KeyEqual reports whether two values are equal under hash-key semantics:
// exactly when their Key() strings coincide. Unlike Equal, NULL matches NULL
// (one group, as SQL GROUP BY and the old string keys treat it) and kinds
// never cross (INT 1 ≠ FLOAT 1.0 ≠ BOOL true). This is the verification step
// behind every Hasher-keyed bucket.
func KeyEqual(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindInt, KindBool:
		return a.i == b.i
	case KindFloat:
		af, bf := a.f, b.f
		if af == 0 {
			af = 0
		}
		if bf == 0 {
			bf = 0
		}
		return math.Float64bits(af) == math.Float64bits(bf)
	case KindString:
		return a.s == b.s
	case KindVector:
		if len(a.vec) != len(b.vec) {
			return false
		}
		for i := range a.vec {
			af, bf := a.vec[i], b.vec[i]
			if af == 0 {
				af = 0
			}
			if bf == 0 {
				bf = 0
			}
			if math.Float64bits(af) != math.Float64bits(bf) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
