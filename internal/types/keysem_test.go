package types

import (
	"math"
	"math/rand"
	"testing"
)

// genValue draws a value of a random kind, biased toward payloads that stress
// key semantics: ±0.0, NaNs with distinct payloads, empty strings/vectors and
// near-duplicate integers.
func genValue(r *rand.Rand) Value {
	floats := []float64{
		0.0, math.Copysign(0, -1), 1.5, -1.5,
		math.NaN(), math.Float64frombits(0x7ff8000000000001), // distinct NaN payload
		math.Inf(1), math.Inf(-1), 42,
	}
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(5) - 2))
	case 2:
		return NewFloat(floats[r.Intn(len(floats))])
	case 3:
		ss := []string{"", "a", "ab", "∅", "i1"}
		return NewString(ss[r.Intn(len(ss))])
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		n := r.Intn(4)
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = floats[r.Intn(len(floats))]
		}
		return NewVector(vec)
	}
}

// TestKeySemanticsCrossCheck asserts the three key mechanisms agree:
// KeyEqual(a,b) ⇔ Key(a)==Key(b), and either implies HashValue(a)==HashValue(b).
// Exercises every kind including NaN payloads and ±0.0 (scalar and vector).
func TestKeySemanticsCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for i := 0; i < 20000; i++ {
		a, b := genValue(r), genValue(r)
		ke := KeyEqual(a, b)
		ks := a.Key() == b.Key()
		if ke != ks {
			t.Fatalf("KeyEqual=%v but Key match=%v for %s vs %s (keys %q vs %q)",
				ke, ks, a, b, a.Key(), b.Key())
		}
		if ke && HashValue(a) != HashValue(b) {
			t.Fatalf("KeyEqual but hashes differ for %s vs %s", a, b)
		}
		// Reflexivity: every value must agree with itself under all three.
		if !KeyEqual(a, a) || a.Key() != a.Key() || HashValue(a) != HashValue(a) {
			t.Fatalf("key semantics not reflexive for %s", a)
		}
	}
}

// TestVectorNegativeZeroKeys pins the -0.0 normalization bugfix: [-0.0] and
// [0.0] must group as one key under Key, KeyEqual and HashValue, matching the
// scalar FLOAT fold.
func TestVectorNegativeZeroKeys(t *testing.T) {
	neg := NewVector([]float64{math.Copysign(0, -1)})
	pos := NewVector([]float64{0.0})
	if !KeyEqual(neg, pos) {
		t.Fatalf("KeyEqual([-0.0], [0.0]) = false, want true")
	}
	if neg.Key() != pos.Key() {
		t.Fatalf("Key mismatch: %q vs %q", neg.Key(), pos.Key())
	}
	if HashValue(neg) != HashValue(pos) {
		t.Fatalf("HashValue mismatch for [-0.0] vs [0.0]")
	}
	// Mixed positions too, and NaN payloads must still key by exact bits.
	neg2 := NewVector([]float64{1, math.Copysign(0, -1), 2})
	pos2 := NewVector([]float64{1, 0, 2})
	if !KeyEqual(neg2, pos2) || neg2.Key() != pos2.Key() || HashValue(neg2) != HashValue(pos2) {
		t.Fatalf("[1,-0.0,2] and [1,0.0,2] must share a key")
	}
	nan1 := NewVector([]float64{math.NaN()})
	nan2 := NewVector([]float64{math.Float64frombits(0x7ff8000000000001)})
	if KeyEqual(nan1, nan2) != (nan1.Key() == nan2.Key()) {
		t.Fatalf("NaN payload vectors: KeyEqual and Key disagree")
	}
}
