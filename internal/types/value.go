// Package types defines the value model shared by every layer of enrichdb.
//
// Values follow the extended relational model of the paper: a relation mixes
// fixed attributes (ordinary SQL values) with derived attributes whose value
// may be NULL until an enrichment function has produced it. A Value is a small
// tagged union so tuples can be stored and compared without boxing every cell
// in an interface.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindVector holds feature vectors used as the
// input of enrichment functions (e.g. tweet embeddings, image features).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindVector
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOL"
	case KindVector:
		return "VECTOR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a tagged union over the kinds above. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	vec  []float64
}

// Null is the NULL value (also the zero Value).
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewVector returns a feature-vector value. The slice is not copied; callers
// that mutate the input after construction must copy it themselves.
func NewVector(v []float64) Value { return Value{kind: KindVector, vec: v} }

// Kind reports the dynamic kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an INT or
// BOOL; use Kind first when the kind is not statically known.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the numeric payload widened to float64. Valid for INT, FLOAT
// and BOOL values.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Str returns the string payload. It panics for non-string values.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics for non-bool values.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Vector returns the feature-vector payload. It panics for non-vector values.
func (v Value) Vector() []float64 {
	if v.kind != KindVector {
		panic(fmt.Sprintf("types: Vector() on %s value", v.kind))
	}
	return v.vec
}

// numeric reports whether the value participates in numeric comparison.
func (v Value) numeric() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindBool
}

// Compare orders two values. It returns a negative, zero or positive integer
// following the usual contract, and false when the values are incomparable
// (either side NULL, incompatible kinds, or vectors). NULL comparisons being
// "unknown" rather than an ordering mirrors SQL three-valued logic.
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if v.numeric() && o.numeric() {
		// Compare in int64 space when both sides are integral to avoid
		// float64 rounding on large ids.
		if v.kind != KindFloat && o.kind != KindFloat {
			a, b := v.i, o.i
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			default:
				return 0, true
			}
		}
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindString && o.kind == KindString {
		return strings.Compare(v.s, o.s), true
	}
	return 0, false
}

// Equal reports whether two values are equal and comparable. NULL never
// equals anything, including NULL (SQL semantics); use IsNull for NULL tests.
func (v Value) Equal(o Value) bool {
	if v.kind == KindVector && o.kind == KindVector {
		if len(v.vec) != len(o.vec) {
			return false
		}
		for i := range v.vec {
			if v.vec[i] != o.vec[i] {
				return false
			}
		}
		return true
	}
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Key returns a string usable as a hash-join or group-by key. It is
// injective per kind and differentiates kinds, so INT 1 and STRING "1" get
// distinct keys. NULL values share the single key "∅" (group-by treats NULLs
// as one group, as SQL does).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "∅"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindBool:
		return "b" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Normalize -0 so it hashes with +0, matching Compare.
		f := v.f
		if f == 0 {
			f = 0
		}
		return "f" + strconv.FormatUint(math.Float64bits(f), 16)
	case KindString:
		return "s" + v.s
	case KindVector:
		var sb strings.Builder
		sb.WriteByte('v')
		for _, f := range v.vec {
			// Normalize -0 per element, exactly as the scalar FLOAT case
			// does, so [-0.0] and [0.0] share one group-by/join key.
			if f == 0 {
				f = 0
			}
			sb.WriteString(strconv.FormatUint(math.Float64bits(f), 16))
			sb.WriteByte(',')
		}
		return sb.String()
	default:
		return "?"
	}
}

// String renders the value for display and plan dumps.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		// Escape embedded quotes SQL-style so the rendering re-parses (the
		// lexer reads '' inside a literal as one quote).
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindVector:
		parts := make([]string, 0, len(v.vec))
		for _, f := range v.vec {
			parts = append(parts, strconv.FormatFloat(f, 'g', 4, 64))
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return "?"
	}
}
