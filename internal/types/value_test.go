package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNullSemantics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must report IsNull")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if _, ok := Null.Compare(NewInt(1)); ok {
		t.Error("NULL must be incomparable to 1")
	}
	if _, ok := NewInt(1).Compare(Null); ok {
		t.Error("1 must be incomparable to NULL")
	}
	if Null.Equal(Null) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
}

func TestCompareInts(t *testing.T) {
	cases := []struct {
		a, b int64
		want int
	}{{1, 2, -1}, {2, 1, 1}, {5, 5, 0}, {-3, 3, -1}}
	for _, c := range cases {
		got, ok := NewInt(c.a).Compare(NewInt(c.b))
		if !ok || got != c.want {
			t.Errorf("Compare(%d,%d) = %d,%v want %d,true", c.a, c.b, got, ok, c.want)
		}
	}
}

func TestCompareMixedNumeric(t *testing.T) {
	got, ok := NewInt(2).Compare(NewFloat(2.5))
	if !ok || got != -1 {
		t.Errorf("2 vs 2.5 = %d,%v want -1,true", got, ok)
	}
	got, ok = NewFloat(3.0).Compare(NewInt(3))
	if !ok || got != 0 {
		t.Errorf("3.0 vs 3 = %d,%v want 0,true", got, ok)
	}
	// Large int64 ids must not lose precision through float64.
	a, b := int64(1<<62), int64(1<<62)+1
	got, ok = NewInt(a).Compare(NewInt(b))
	if !ok || got != -1 {
		t.Errorf("large int compare = %d,%v want -1,true", got, ok)
	}
}

func TestCompareStrings(t *testing.T) {
	got, ok := NewString("apple").Compare(NewString("banana"))
	if !ok || got >= 0 {
		t.Errorf("apple vs banana = %d,%v", got, ok)
	}
	if _, ok := NewString("1").Compare(NewInt(1)); ok {
		t.Error("string and int must be incomparable")
	}
}

func TestKeyDistinguishesKinds(t *testing.T) {
	if NewInt(1).Key() == NewString("1").Key() {
		t.Error("INT 1 and TEXT '1' must have distinct keys")
	}
	if NewInt(1).Key() == NewBool(true).Key() {
		t.Error("INT 1 and TRUE must have distinct keys")
	}
	if NewFloat(0).Key() != NewFloat(-0.0).Key() {
		t.Error("+0 and -0 must share a key (they compare equal)")
	}
}

func TestVectorEqual(t *testing.T) {
	a := NewVector([]float64{1, 2, 3})
	b := NewVector([]float64{1, 2, 3})
	c := NewVector([]float64{1, 2})
	if !a.Equal(b) {
		t.Error("identical vectors must be Equal")
	}
	if a.Equal(c) {
		t.Error("different-length vectors must not be Equal")
	}
	if a.Key() != b.Key() {
		t.Error("equal vectors must share a key")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic on wrong kind", name)
			}
		}()
		fn()
	}
	mustPanic("Int", func() { NewString("x").Int() })
	mustPanic("Str", func() { NewInt(1).Str() })
	mustPanic("Float", func() { NewString("x").Float() })
	mustPanic("Bool", func() { NewInt(1).Bool() })
	mustPanic("Vector", func() { NewInt(1).Vector() })
}

func TestBoolAsNumeric(t *testing.T) {
	if NewBool(true).Float() != 1 || NewBool(false).Float() != 0 {
		t.Error("bools must widen to 1/0")
	}
}

// Property: Compare is antisymmetric and Key agrees with equality for ints.
func TestCompareKeyConsistencyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		ab, ok1 := va.Compare(vb)
		ba, ok2 := vb.Compare(va)
		if !ok1 || !ok2 || ab != -ba {
			return false
		}
		return (ab == 0) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare on floats is a total order consistent with < (ignoring
// NaN, which the generator never produces here).
func TestFloatCompareQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := r.NormFloat64()*100, r.NormFloat64()*100
		got, ok := NewFloat(a).Compare(NewFloat(b))
		if !ok {
			t.Fatalf("floats must compare: %v vs %v", a, b)
		}
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		if got != want {
			t.Fatalf("Compare(%v,%v) = %d want %d", a, b, got, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(42), "42"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewString("hi"), "'hi'"},
		{NewFloat(2.5), "2.5"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q want %q", c.v.Kind(), got, c.want)
		}
	}
}
