package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// GobEncode implements gob.GobEncoder so Values survive snapshot
// serialization despite their unexported fields. The format is one kind
// byte followed by a kind-specific payload.
func (v Value) GobEncode() ([]byte, error) {
	buf := []byte{byte(v.kind)}
	switch v.kind {
	case KindNull:
	case KindInt, KindBool:
		buf = binary.AppendVarint(buf, v.i)
	case KindFloat:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.f))
	case KindString:
		buf = append(buf, v.s...)
	case KindVector:
		for _, f := range v.vec {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(f))
		}
	default:
		return nil, fmt.Errorf("types: cannot encode kind %d", v.kind)
	}
	return buf, nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("types: empty value encoding")
	}
	kind := Kind(data[0])
	payload := data[1:]
	switch kind {
	case KindNull:
		*v = Null
	case KindInt, KindBool:
		i, n := binary.Varint(payload)
		if n <= 0 {
			return fmt.Errorf("types: bad integer encoding")
		}
		*v = Value{kind: kind, i: i}
	case KindFloat:
		if len(payload) != 8 {
			return fmt.Errorf("types: bad float encoding")
		}
		*v = Value{kind: KindFloat, f: math.Float64frombits(binary.BigEndian.Uint64(payload))}
	case KindString:
		*v = Value{kind: KindString, s: string(payload)}
	case KindVector:
		if len(payload)%8 != 0 {
			return fmt.Errorf("types: bad vector encoding")
		}
		vec := make([]float64, len(payload)/8)
		for i := range vec {
			vec[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[i*8:]))
		}
		*v = Value{kind: KindVector, vec: vec}
	default:
		return fmt.Errorf("types: cannot decode kind %d", kind)
	}
	return nil
}
