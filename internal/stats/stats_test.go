package stats

import (
	"math"
	"sync"
	"testing"
)

func TestPredicateEWMA(t *testing.T) {
	s := NewStore()
	if _, ok := s.PredicateSelectivity("p"); ok {
		t.Fatal("empty store reported a selectivity")
	}
	s.ObservePredicate("p", 100, 50, 200)
	sel, ok := s.PredicateSelectivity("p")
	if !ok || sel != 0.5 {
		t.Fatalf("first observation should set the estimate exactly: got %v ok=%v", sel, ok)
	}
	// A drifted batch moves the estimate toward the new rate by alpha.
	s.ObservePredicate("p", 100, 100, 200)
	sel, _ = s.PredicateSelectivity("p")
	want := 0.5 + DefaultAlpha*(1.0-0.5)
	if math.Abs(sel-want) > 1e-12 {
		t.Fatalf("EWMA update: got %v want %v", sel, want)
	}
	if cost, ok := s.PredicateCostNs("p"); !ok || cost != 200 {
		t.Fatalf("cost estimate: got %v ok=%v", cost, ok)
	}
}

func TestGuards(t *testing.T) {
	s := NewStore()
	// Zero-rows-in batches must not create a 0/0 estimate.
	s.ObservePredicate("p", 0, 0, 0)
	if _, ok := s.PredicateSelectivity("p"); ok {
		t.Fatal("zero-eval batch created an estimate")
	}
	// NaN/Inf costs and impacts are dropped, not folded in.
	s.ObservePredicate("p", 10, 5, math.NaN())
	if _, ok := s.PredicateCostNs("p"); ok {
		t.Fatal("NaN cost leaked into the store")
	}
	s.ObserveFnImpact("r", "a", 0, math.Inf(1))
	if _, ok := s.FnImpact("r", "a", 0); ok {
		t.Fatal("Inf impact leaked into the store")
	}
	// Out-of-range passes are clamped, never a selectivity > 1 or < 0.
	s.ObservePredicate("q", 10, 20, 1)
	if sel, _ := s.PredicateSelectivity("q"); sel != 1 {
		t.Fatalf("passes clamp: got %v", sel)
	}
	s.ObservePredicate("q2", 10, -5, 1)
	if sel, _ := s.PredicateSelectivity("q2"); sel != 0 {
		t.Fatalf("negative passes clamp: got %v", sel)
	}
	// Negative cardinalities are accounting bugs; dropped.
	s.ObserveOp("op", -1, 5)
	if _, _, ok := s.OpCardinality("op"); ok {
		t.Fatal("negative rows-in leaked into the store")
	}
	// Nil store: every method is a no-op.
	var nilStore *Store
	nilStore.ObservePredicate("p", 1, 1, 1)
	nilStore.SetAlpha(0.5)
	if _, ok := nilStore.PredicateSelectivity("p"); ok {
		t.Fatal("nil store returned an estimate")
	}
}

func TestFnAndOpStats(t *testing.T) {
	s := NewStore()
	s.ObserveFnCost("tweets", "topic", 1, 5000, 10)
	if c, ok := s.FnCostNs("tweets", "topic", 1); !ok || c != 5000 {
		t.Fatalf("fn cost: got %v ok=%v", c, ok)
	}
	s.ObserveFnImpact("tweets", "topic", 1, -3) // clamped to 0
	if imp, ok := s.FnImpact("tweets", "topic", 1); !ok || imp != 0 {
		t.Fatalf("impact clamp: got %v ok=%v", imp, ok)
	}
	s.ObserveOp("join:t.id = i.tid", 100, 40)
	in, out, ok := s.OpCardinality("join:t.id = i.tid")
	if !ok || in != 100 || out != 40 {
		t.Fatalf("op cardinality: got %v/%v ok=%v", in, out, ok)
	}
	if s.String() == "" {
		t.Fatal("String rendered nothing")
	}
}

func TestConcurrentObservers(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.ObservePredicate("p", 10, int64(i%11), float64(i))
				s.ObserveFnCost("r", "a", w, float64(i), 1)
				s.ObserveOp("scan", int64(i), int64(i/2))
			}
		}(w)
	}
	wg.Wait()
	if sel, ok := s.PredicateSelectivity("p"); !ok || sel < 0 || sel > 1 {
		t.Fatalf("selectivity out of range after concurrent writes: %v ok=%v", sel, ok)
	}
}
