// Package stats is the adaptive optimizer's runtime statistics store: an
// EWMA-decayed accumulator of per-predicate selectivities and evaluation
// costs, per-enrichment-function costs and answer impacts, and per-operator
// cardinalities. The engine and the progressive executor feed it online from
// observed execution; the planner, the adaptive filter reorderer and the
// plan-only EXPLAIN annotator read estimates back out. Exponential decay
// (alpha-weighted) keeps the estimates tracking drifting data instead of
// averaging over the whole history.
//
// The store is safe for concurrent use; every observation is guarded
// against NaN/Inf and nonsensical counts, so a pathological measurement
// (zero-rows-in operators, clock anomalies) can never poison an estimate.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// DefaultAlpha is the EWMA weight of a new observation. 0.3 follows new
// evidence quickly (a selectivity drift is fully absorbed within a handful
// of batches) while still smoothing single-batch noise.
const DefaultAlpha = 0.3

// ewma is a decayed scalar; the zero value is "no observation yet".
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) observe(alpha, x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v += alpha * (x - e.v)
}

// FnKey identifies one enrichment function within a family.
type FnKey struct {
	Relation string
	Attr     string
	FnID     int
}

type predStat struct {
	sel    ewma // passes / evals
	costNs ewma // per-evaluation cost
	evals  int64
}

type fnStat struct {
	costNs ewma // per-run cost
	impact ewma // answer deltas per executed function
	runs   int64
}

type opStat struct {
	rowsIn  ewma
	rowsOut ewma
	obs     int64
}

// Store accumulates runtime statistics. The zero value is not usable; call
// NewStore.
type Store struct {
	mu    sync.Mutex
	alpha float64
	preds map[string]*predStat
	fns   map[FnKey]*fnStat
	ops   map[string]*opStat
}

// NewStore returns an empty store with the default decay.
func NewStore() *Store {
	return &Store{
		alpha: DefaultAlpha,
		preds: make(map[string]*predStat),
		fns:   make(map[FnKey]*fnStat),
		ops:   make(map[string]*opStat),
	}
}

// SetAlpha overrides the EWMA weight; values outside (0, 1] are ignored.
func (s *Store) SetAlpha(a float64) {
	if s == nil || math.IsNaN(a) || a <= 0 || a > 1 {
		return
	}
	s.mu.Lock()
	s.alpha = a
	s.mu.Unlock()
}

// ObservePredicate folds one batch of predicate evaluations in: evals rows
// evaluated, passes of them satisfied the predicate, at avgCostNs per
// evaluation. Batches with no evaluations are ignored (a zero-rows-in
// operator observes nothing rather than a 0/0 selectivity), passes is
// clamped into [0, evals], and non-finite costs are dropped.
func (s *Store) ObservePredicate(key string, evals, passes int64, avgCostNs float64) {
	if s == nil || evals <= 0 {
		return
	}
	if passes < 0 {
		passes = 0
	}
	if passes > evals {
		passes = evals
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.preds[key]
	if st == nil {
		st = &predStat{}
		s.preds[key] = st
	}
	st.evals += evals
	st.sel.observe(s.alpha, float64(passes)/float64(evals))
	if avgCostNs >= 0 {
		st.costNs.observe(s.alpha, avgCostNs)
	}
}

// PredicateSelectivity returns the decayed pass rate of a predicate.
func (s *Store) PredicateSelectivity(key string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.preds[key]; st != nil && st.sel.set {
		return st.sel.v, true
	}
	return 0, false
}

// PredicateCostNs returns the decayed per-evaluation cost of a predicate.
func (s *Store) PredicateCostNs(key string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.preds[key]; st != nil && st.costNs.set {
		return st.costNs.v, true
	}
	return 0, false
}

// ObserveFnCost folds in runs executions of a function at avgNs each.
func (s *Store) ObserveFnCost(rel, attr string, fn int, avgNs float64, runs int64) {
	if s == nil || runs <= 0 || avgNs < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.fnStat(rel, attr, fn)
	st.runs += runs
	st.costNs.observe(s.alpha, avgNs)
}

// ObserveFnImpact folds in one epoch's answer impact of a function: answer
// rows changed per execution attributed to it. Negative impacts are clamped
// to zero.
func (s *Store) ObserveFnImpact(rel, attr string, fn int, impact float64) {
	if s == nil || math.IsNaN(impact) || math.IsInf(impact, 0) {
		return
	}
	if impact < 0 {
		impact = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fnStat(rel, attr, fn).impact.observe(s.alpha, impact)
}

func (s *Store) fnStat(rel, attr string, fn int) *fnStat {
	k := FnKey{rel, attr, fn}
	st := s.fns[k]
	if st == nil {
		st = &fnStat{}
		s.fns[k] = st
	}
	return st
}

// FnCostNs returns the decayed per-run cost of a function.
func (s *Store) FnCostNs(rel, attr string, fn int) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.fns[FnKey{rel, attr, fn}]; st != nil && st.costNs.set {
		return st.costNs.v, true
	}
	return 0, false
}

// FnImpact returns the decayed answer impact of a function.
func (s *Store) FnImpact(rel, attr string, fn int) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.fns[FnKey{rel, attr, fn}]; st != nil && st.impact.set {
		return st.impact.v, true
	}
	return 0, false
}

// ObserveOp folds in one operator execution's observed cardinalities.
// Negative counts are dropped (they indicate an accounting bug upstream,
// never a real cardinality).
func (s *Store) ObserveOp(key string, rowsIn, rowsOut int64) {
	if s == nil || rowsIn < 0 || rowsOut < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ops[key]
	if st == nil {
		st = &opStat{}
		s.ops[key] = st
	}
	st.obs++
	st.rowsIn.observe(s.alpha, float64(rowsIn))
	st.rowsOut.observe(s.alpha, float64(rowsOut))
}

// OpCardinality returns the decayed observed in/out cardinalities of an
// operator.
func (s *Store) OpCardinality(key string) (in, out float64, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.ops[key]; st != nil && st.rowsOut.set {
		return st.rowsIn.v, st.rowsOut.v, true
	}
	return 0, 0, false
}

// String renders the store deterministically (sorted keys) for debugging
// and tests.
func (s *Store) String() string {
	if s == nil {
		return "stats: nil"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sb strings.Builder
	pkeys := make([]string, 0, len(s.preds))
	for k := range s.preds {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	for _, k := range pkeys {
		st := s.preds[k]
		fmt.Fprintf(&sb, "pred %q sel=%.3f cost=%.0fns evals=%d\n", k, st.sel.v, st.costNs.v, st.evals)
	}
	fkeys := make([]FnKey, 0, len(s.fns))
	for k := range s.fns {
		fkeys = append(fkeys, k)
	}
	sort.Slice(fkeys, func(i, j int) bool {
		a, b := fkeys[i], fkeys[j]
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		return a.FnID < b.FnID
	})
	for _, k := range fkeys {
		st := s.fns[k]
		fmt.Fprintf(&sb, "fn %s.%s/%d cost=%.0fns impact=%.3f runs=%d\n",
			k.Relation, k.Attr, k.FnID, st.costNs.v, st.impact.v, st.runs)
	}
	okeys := make([]string, 0, len(s.ops))
	for k := range s.ops {
		okeys = append(okeys, k)
	}
	sort.Strings(okeys)
	for _, k := range okeys {
		st := s.ops[k]
		fmt.Fprintf(&sb, "op %q in=%.0f out=%.0f obs=%d\n", k, st.rowsIn.v, st.rowsOut.v, st.obs)
	}
	return sb.String()
}
