package bench

// The adaptive-optimization workloads (DESIGN §14): a skewed filter where
// cheapest-rejection-first conjunct reordering pays, and a skewed-cost
// progressive enrichment where the Adaptive strategy's observed
// impact-per-cost ranking reaches answer quality sooner than static orders.
// ExpAdaptive prints the comparison for the benchrunner; the Benchmark*
// functions in adaptive_bench_test.go measure the same workloads for
// BENCH_adaptive.json.

import (
	"fmt"
	"time"

	"enrichdb/internal/catalog"
	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/loose"
	"enrichdb/internal/progressive"
	"enrichdb/internal/stats"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

// skewFilterTable builds n rows (x1, x2, x3, r) where every xi passes its
// benchmark conjunct and r = i%100 rejects 99%. The static conjunct order
// puts the rejector last — the pessimal order an oblivious optimizer might
// pick — so every row pays all four evaluations; cheapest-rejection-first
// moves r to the front after the first re-rank boundary.
func skewFilterTable(tb interface {
	Helper()
	Fatal(...any)
}, n int) *storage.Table {
	tb.Helper()
	schema := catalog.MustSchema("W", []catalog.Column{
		{Name: "x1", Kind: types.KindInt},
		{Name: "x2", Kind: types.KindInt},
		{Name: "x3", Kind: types.KindInt},
		{Name: "r", Kind: types.KindInt},
	})
	tbl := storage.NewTable(schema)
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(&types.Tuple{Vals: []types.Value{
			types.NewInt(int64(i)),
			types.NewInt(int64(i) * 2),
			types.NewInt(int64(i) * 3),
			types.NewInt(int64(i) % 100),
		}})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return tbl
}

// skewFilterPred is the pessimal static order: three always-true conjuncts,
// then the 1%-pass rejector.
func skewFilterPred(tb interface {
	Helper()
	Fatal(...any)
}, rs *expr.RowSchema, n int) expr.Expr {
	tb.Helper()
	pred := expr.NewAnd(
		expr.NewAnd(
			expr.NewAnd(
				expr.NewCmp(expr.LT, expr.NewCol("W", "x1"), expr.NewConst(types.NewInt(int64(n)))),
				expr.NewCmp(expr.LT, expr.NewCol("W", "x2"), expr.NewConst(types.NewInt(int64(n)*2))),
			),
			expr.NewCmp(expr.LT, expr.NewCol("W", "x3"), expr.NewConst(types.NewInt(int64(n)*3))),
		),
		expr.NewCmp(expr.EQ, expr.NewCol("W", "r"), expr.NewConst(types.NewInt(1))),
	)
	if err := pred.Resolve(rs); err != nil {
		tb.Fatal(err)
	}
	return pred
}

// runSkewFilter executes the skewed filter once on the row path; a nil store
// is the static order, a non-nil store enables adaptive reordering.
func runSkewFilter(tbl *storage.Table, pred expr.Expr, st *stats.Store) (int, error) {
	ctx := engine.NewExecCtx()
	ctx.NoVector = true // compare row path against row path: reordering is the variable
	ctx.Adapt = st
	rows, err := engine.NewFilter(engine.NewScan(tbl, "W"), pred).Execute(ctx)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// AdaptiveSkewSpecs registers two functions per tweet attribute: a cheap one
// and one carrying a 300µs artificial inference cost — the skew the Adaptive
// strategy's impact-per-cost ranking exploits.
func AdaptiveSkewSpecs() map[[2]string][]dataset.ModelSpec {
	return map[[2]string][]dataset.ModelSpec{
		{"TweetData", "sentiment"}: {
			{Kind: "gnb"},
			{Kind: "mlp", Param: 16, ExtraCost: 300 * time.Microsecond},
		},
		{"TweetData", "topic"}: {
			{Kind: "gnb"},
			{Kind: "knn", Param: 5, ExtraCost: 300 * time.Microsecond},
		},
	}
}

// timeToQuality runs one progressive query on a fresh env and returns the
// wall time until the answer first reaches the quality target (and the time
// of the full run if it never does, with reached=false).
func timeToQuality(s Scale, strategy progressive.Strategy, query string, target float64) (time.Duration, bool, error) {
	env, err := NewEnv(s, AdaptiveSkewSpecs())
	if err != nil {
		return 0, false, err
	}
	quality, err := env.QualityFn(query)
	if err != nil {
		return 0, false, err
	}
	cancel := make(chan struct{})
	var hit time.Duration
	reached := false
	start := time.Now()
	cfg := progressive.Config{
		Design:      progressive.Tight,
		Query:       query,
		DB:          env.Data.DB,
		Mgr:         env.Mgr,
		Enricher:    &loose.LocalEnricher{Mgr: env.Mgr},
		Strategy:    strategy,
		EpochBudget: 2 * time.Millisecond,
		MaxEpochs:   4000,
		Seed:        s.Seed,
		Quality:     quality,
		Stats:       env.Stats,
		Cancel:      cancel,
		OnEpoch: func(ep progressive.EpochReport) {
			if !reached && ep.Quality >= target {
				reached = true
				hit = time.Since(start)
				close(cancel)
			}
		},
	}
	if _, err := progressive.Run(cfg); err != nil {
		return 0, false, err
	}
	if !reached {
		hit = time.Since(start)
	}
	return hit, reached, nil
}

// AdaptiveQuery is the skewed-workload query both adaptive benchmarks run: a
// two-derived-predicate selection over a time window, so both skewed
// families are on the query path.
func (s Scale) AdaptiveQuery() string {
	t1, t2 := s.TimeRange/4, s.TimeRange/4+s.TimeRange/10
	return fmt.Sprintf("SELECT * FROM TweetData WHERE topic <= %d AND sentiment = 1 AND TweetTime BETWEEN %d AND %d",
		int64(s.TopicDomain/2), t1, t2)
}

// AdaptiveQualityTarget is the F1 both time-to-quality runs race to.
const AdaptiveQualityTarget = 0.70

// ExpAdaptive compares static against adaptive execution on the two skewed
// workloads: wall time of the pessimally-ordered filter with and without
// cheapest-rejection-first reordering, and time-to-quality of a progressive
// run under the random, function-ordered and Adaptive strategies.
func ExpAdaptive(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Adaptive optimization — static vs runtime-stats-driven execution",
		Header: []string{"workload", "variant", "wall", "speedup"},
	}

	const filterRows = 400_000
	tbl := skewFilterTable(panicHelper{}, filterRows)
	pred := func() expr.Expr { return skewFilterPred(panicHelper{}, engine.NewScan(tbl, "W").Schema(), filterRows) }
	measure := func(st *stats.Store) (time.Duration, error) {
		// Two passes, keep the second: warms the table on both variants and
		// gives the adaptive run one scan of observations, mirroring the
		// steady state a long scan reaches after its first re-rank boundary.
		if _, err := runSkewFilter(tbl, pred(), st); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := runSkewFilter(tbl, pred(), st); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	staticWall, err := measure(nil)
	if err != nil {
		return nil, err
	}
	adaptiveWall, err := measure(stats.NewStore())
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"filter(pessimal order)", "static", dur(staticWall), "1.00x"},
		[]string{"filter(pessimal order)", "adaptive", dur(adaptiveWall),
			fmt.Sprintf("%.2fx", float64(staticWall)/float64(adaptiveWall))})

	query := s.AdaptiveQuery()
	var randomWall time.Duration
	for _, v := range []struct {
		name     string
		strategy progressive.Strategy
	}{
		{"SB(RO)", progressive.SBRO},
		{"SB(FO)", progressive.SBFO},
		{"Adaptive", progressive.Adaptive},
	} {
		wall, reached, err := timeToQuality(s, v.strategy, query, AdaptiveQualityTarget)
		if err != nil {
			return nil, err
		}
		if v.strategy == progressive.SBRO {
			randomWall = wall
		}
		note := ""
		if !reached {
			note = " (target not reached)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("time-to-F1>=%.2f", AdaptiveQualityTarget), v.name,
			dur(wall) + note,
			fmt.Sprintf("%.2fx", float64(randomWall)/float64(wall)),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: adaptive filter >=1.5x over the pessimal static order; Adaptive strategy reaches the F1 target ahead of SB(RO) on skewed function costs")
	return t, nil
}

// panicHelper satisfies the testing-like helper interface for non-test
// callers of the workload builders.
type panicHelper struct{}

func (panicHelper) Helper()           {}
func (panicHelper) Fatal(args ...any) { panic(fmt.Sprint(args...)) }
