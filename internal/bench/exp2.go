package bench

import (
	"fmt"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/loose"
	"enrichdb/internal/metrics"
	"enrichdb/internal/progressive"
	"enrichdb/internal/sqlparser"
)

// QualityFn builds a per-epoch answer-quality scorer for a query: F1 against
// the ground-truth answer set for SPJ queries, and 1/(1+RMSE) for
// aggregations (monotone in the paper's RMSE measure, bounded to [0,1] so it
// composes with the progressive score).
func (e *Env) QualityFn(query string) (func([]*expr.Row) float64, error) {
	tdb, err := e.Data.TruthDB()
	if err != nil {
		return nil, err
	}
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	a, err := engine.Analyze(stmt, tdb.Catalog())
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, tdb)
	if err != nil {
		return nil, err
	}
	want, err := plan.Execute(engine.NewExecCtx())
	if err != nil {
		return nil, err
	}
	agg := stmt.HasAggregate()
	return func(got []*expr.Row) float64 {
		if agg {
			rmse, ok := metrics.GroupRMSE(got, want)
			if !ok {
				return 0 // no groups on either side: no quality signal yet
			}
			return 1 / (1 + rmse)
		}
		_, _, f1 := metrics.SetF1(got, want)
		return f1
	}, nil
}

// runProgressive executes one progressive run on a fresh env.
func runProgressive(s Scale, specs map[[2]string][]dataset.ModelSpec, design progressive.Design, query string, strategy progressive.Strategy, budget time.Duration, maxEpochs int) (*progressive.Result, error) {
	env, err := NewEnv(s, specs)
	if err != nil {
		return nil, err
	}
	quality, err := env.QualityFn(query)
	if err != nil {
		return nil, err
	}
	return progressive.Run(progressive.Config{
		Design:      design,
		Query:       query,
		DB:          env.Data.DB,
		Mgr:         env.Mgr,
		Enricher:    &loose.LocalEnricher{Mgr: env.Mgr},
		Strategy:    strategy,
		EpochBudget: budget,
		MaxEpochs:   maxEpochs,
		Seed:        s.Seed,
		Quality:     quality,
		Tracer:      env.Tracer,
	})
}

// sampleSeries reduces a quality series to n evenly spaced points
// (normalized to its maximum, as the paper plots F1/F1_max).
func sampleSeries(q []float64, n int) []float64 {
	norm := metrics.Normalize(q)
	if len(norm) <= n {
		return norm
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(norm) - 1) / (n - 1)
		out[i] = norm[idx]
	}
	return out
}

const (
	progressiveBudget = 2 * time.Millisecond
	progressiveEpochs = 120
)

// Exp2Progressiveness reproduces Figure 7 (progressive quality over epochs
// for Q2, Q3, Q4 and the same-algorithm RF family) and Figure 6 (progressive
// scores for Q1–Q9), for both designs. Expected shape: both designs reach
// most of their final quality within the first few epochs; the tight design
// scores at least as high as the loose design.
func Exp2Progressiveness(s Scale) (*Table, *Table, error) {
	queries := s.Queries()

	// Figure 7: normalized quality series for Q2, Q3, Q4 with the full
	// Table 5 function families, plus Q3 with the RF-complexity family
	// (Figure 7(b)).
	fig7 := &Table{
		Title:  "Figure 7 — normalized answer quality over epochs (10 sampled points)",
		Header: []string{"query", "design", "quality@0%..100%"},
	}
	type figRun struct {
		label string
		specs map[[2]string][]dataset.ModelSpec
		query string
	}
	runs := []figRun{
		{"Q2", dataset.PaperFamilySpecs(), queries[1]},
		{"Q3", dataset.PaperFamilySpecs(), queries[2]},
		{"Q4", dataset.PaperFamilySpecs(), queries[3]},
		{"Q3/rf-family", rfPlusPaper(), queries[2]},
	}
	for _, fr := range runs {
		for _, design := range []progressive.Design{progressive.Loose, progressive.Tight} {
			res, err := runProgressive(s, fr.specs, design, fr.query, progressive.SBFO, progressiveBudget, progressiveEpochs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7 %s %s: %w", fr.label, design, err)
			}
			fig7.Rows = append(fig7.Rows, []string{
				fr.label, design.String(), seriesString(sampleSeries(res.Quality, 10)),
			})
		}
	}
	fig7.Notes = append(fig7.Notes,
		"paper shape: quality rises steeply in the first epochs for both designs, then flattens")

	// Figure 6: progressive scores for all nine queries.
	fig6 := &Table{
		Title:  "Figure 6 — progressive scores (slope 0.05)",
		Header: []string{"query", "loose PS", "tight PS"},
	}
	for qi, q := range queries {
		var ps [2]float64
		for di, design := range []progressive.Design{progressive.Loose, progressive.Tight} {
			res, err := runProgressive(s, dataset.PaperFamilySpecs(), design, q, progressive.SBFO, progressiveBudget, progressiveEpochs)
			if err != nil {
				return nil, nil, fmt.Errorf("fig6 Q%d %s: %w", qi+1, design, err)
			}
			ps[di] = metrics.ProgressiveScore(metrics.Normalize(res.Quality), 0.05)
		}
		fig6.Rows = append(fig6.Rows, []string{
			fmt.Sprintf("Q%d", qi+1),
			fmt.Sprintf("%.3f", ps[0]),
			fmt.Sprintf("%.3f", ps[1]),
		})
	}
	fig6.Notes = append(fig6.Notes,
		"paper shape: similar scores for both designs at slope 0.05, tight >= loose")
	return fig7, fig6, nil
}

// rfPlusPaper equips TweetData's attributes with the RF-complexity family
// (5/10/15/20 trees) for topic and sentiment — the Exp 2 same-algorithm
// cost/quality study.
func rfPlusPaper() map[[2]string][]dataset.ModelSpec {
	specs := map[[2]string][]dataset.ModelSpec{}
	for k, v := range dataset.RFComplexitySpecs("sentiment") {
		specs[k] = v
	}
	for k, v := range dataset.RFComplexitySpecs("topic") {
		specs[k] = v
	}
	// MultiPie families unchanged (not referenced by the Q3 run but
	// registration keeps the env uniform).
	paper := dataset.PaperFamilySpecs()
	specs[[2]string{"MultiPie", "gender"}] = paper[[2]string{"MultiPie", "gender"}]
	specs[[2]string{"MultiPie", "expression"}] = paper[[2]string{"MultiPie", "expression"}]
	return specs
}

func seriesString(q []float64) string {
	out := ""
	for i, v := range q {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out
}

// Exp3PlanStrategies reproduces Figure 8: the effect of the three plan
// generation strategies on progressiveness for Q2, Q3 and Q4. Expected
// shape: SB(FO) best, SB(OO) worst, SB(RO) in between.
func Exp3PlanStrategies(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 8 — plan strategies SB(OO)/SB(RO)/SB(FO): progressive score and quality curve",
		Header: []string{"query", "strategy", "PS", "quality@0%..100%"},
	}
	queries := s.Queries()
	for _, qi := range []int{1, 2, 3} { // Q2, Q3, Q4
		// The paper's three strategies plus this library's benefit-based
		// extension (§3.1's cited alternative to sampling).
		for _, strategy := range []progressive.Strategy{progressive.SBOO, progressive.SBRO, progressive.SBFO, progressive.Benefit} {
			res, err := runProgressive(s, dataset.PaperFamilySpecs(), progressive.Loose,
				queries[qi], strategy, progressiveBudget, progressiveEpochs)
			if err != nil {
				return nil, fmt.Errorf("Q%d %s: %w", qi+1, strategy, err)
			}
			ps := metrics.ProgressiveScore(metrics.Normalize(res.Quality), 0.05)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("Q%d", qi+1),
				strategy.String(),
				fmt.Sprintf("%.3f", ps),
				seriesString(sampleSeries(res.Quality, 8)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: SB(FO) > SB(RO) > SB(OO) — picking the best quality/cost function first wins",
		"Benefit is an extension: uncertainty-ranked tuples with SB(FO) function choice")
	return t, nil
}
