package bench

import (
	"fmt"
	"math/rand"
	"time"

	"enrichdb/internal/catalog"
	"enrichdb/internal/enrich"
	"enrichdb/internal/ml"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

// IngestionRate reproduces the paper's introduction claim that enriching at
// arrival limits ingestion (they report "10s of events per second" with
// heavyweight models): it measures sustainable insert throughput with lazy
// (no enrichment) vs eager (full family at insert) ingestion, for several
// per-object model costs. Expected shape: lazy throughput is flat and high;
// eager throughput collapses proportionally to function cost.
func IngestionRate(events int, costs []time.Duration) (*Table, error) {
	t := &Table{
		Title:  "Ingestion rate — lazy (query-time enrichment) vs eager (enrich at arrival)",
		Header: []string{"model cost/object", "lazy events/s", "eager events/s", "slowdown"},
	}
	for _, cost := range costs {
		lazy, err := measureIngest(events, cost, false)
		if err != nil {
			return nil, err
		}
		eager, err := measureIngest(events, cost, true)
		if err != nil {
			return nil, err
		}
		slowdown := 0.0
		if eager > 0 {
			slowdown = lazy / eager
		}
		t.Rows = append(t.Rows, []string{
			cost.String(),
			fmt.Sprintf("%.0f", lazy),
			fmt.Sprintf("%.0f", eager),
			fmt.Sprintf("%.0fx", slowdown),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: eager ingestion throughput collapses with model cost; lazy ingestion is model-cost-independent")
	return t, nil
}

// measureIngest builds a fresh single-relation store and times inserting
// `events` tuples, optionally enriching each with a model of the given cost.
func measureIngest(events int, cost time.Duration, eager bool) (float64, error) {
	db := storage.NewDB()
	schema := catalog.MustSchema("Events", []catalog.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "feat", Kind: types.KindVector},
		{Name: "label", Kind: types.KindInt, Derived: true, FeatureCol: "feat", Domain: 2},
	})
	tbl, err := db.CreateTable(schema)
	if err != nil {
		return 0, err
	}

	mgr := enrich.NewManager()
	model := ml.NewGNB()
	if err := model.Fit([][]float64{{-1}, {1}, {-2}, {2}}, []int{0, 1, 0, 1}, 2); err != nil {
		return 0, err
	}
	fam, err := enrich.NewFamily("Events", "label", 2, nil, &enrich.Function{
		Name: "gnb", Model: model, Quality: 1, ExtraCost: cost,
	})
	if err != nil {
		return 0, err
	}
	if err := mgr.Register(fam); err != nil {
		return 0, err
	}

	r := rand.New(rand.NewSource(3))
	features := make([][]float64, events)
	for i := range features {
		features[i] = []float64{r.NormFloat64()}
	}

	start := time.Now()
	for i := 0; i < events; i++ {
		tid := int64(i + 1)
		if _, err := tbl.Insert(&types.Tuple{ID: tid, Vals: []types.Value{
			types.NewInt(tid), types.NewVector(features[i]), types.Null,
		}}); err != nil {
			return 0, err
		}
		if eager {
			if _, err := mgr.Execute("Events", tid, "label", 0, features[i]); err != nil {
				return 0, err
			}
			v, err := mgr.Determine("Events", tid, "label", features[i])
			if err != nil {
				return 0, err
			}
			if _, err := tbl.Update(tid, "label", v); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(events) / elapsed.Seconds(), nil
}
