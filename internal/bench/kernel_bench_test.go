package bench

// Kernel microbenchmarks: the non-enrichment relational hot path (scan,
// filter, hash join, semi-join, IVM apply) at 10k–1M rows. `make bench-kernel`
// runs these and regenerates BENCH_kernel.json so the repo keeps a recorded
// perf trajectory; every benchmark reports allocations because allocation
// discipline is the point — enrichment cost must dominate, so the relational
// bookkeeping around it has to stay near-free.

import (
	"fmt"
	"runtime"
	"testing"

	"enrichdb/internal/catalog"
	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/ivm"
	"enrichdb/internal/loose"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/storage"
	"enrichdb/internal/types"
)

// kernelSizes are the row counts the scan-shaped kernels run at.
var kernelSizes = []int{10_000, 100_000, 1_000_000}

// kernelTable builds a table of n rows: (id INT, k INT, a INT) with k uniform
// over n/10 distinct values and a uniform over [0,100).
func kernelTable(b testing.TB, name string, n int) *storage.Table {
	b.Helper()
	schema := catalog.MustSchema(name, []catalog.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "k", Kind: types.KindInt},
		{Name: "a", Kind: types.KindInt},
	})
	tbl := storage.NewTable(schema)
	keys := int64(n / 10)
	if keys == 0 {
		keys = 1
	}
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(&types.Tuple{Vals: []types.Value{
			types.NewInt(int64(i + 1)),
			types.NewInt(int64(i) % keys),
			types.NewInt(int64(i) % 100),
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func sizeName(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func BenchmarkKernelScan(b *testing.B) {
	for _, n := range kernelSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			tbl := kernelTable(b, "R", n)
			plan := engine.NewScan(tbl, "R")
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := engine.NewExecCtx()
				rows, err := plan.Execute(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n {
					b.Fatalf("scan returned %d rows, want %d", len(rows), n)
				}
			}
		})
	}
}

func BenchmarkKernelFilter(b *testing.B) {
	for _, n := range kernelSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			tbl := kernelTable(b, "R", n)
			pred := expr.NewCmp(expr.LT, expr.NewCol("R", "a"), expr.NewConst(types.NewInt(50)))
			scan := engine.NewScan(tbl, "R")
			if err := pred.Resolve(scan.Schema()); err != nil {
				b.Fatal(err)
			}
			plan := engine.NewFilter(scan, pred)
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := engine.NewExecCtx()
				rows, err := plan.Execute(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n/2 {
					b.Fatalf("filter kept %d rows, want %d", len(rows), n/2)
				}
			}
		})
	}
}

func BenchmarkKernelHashJoin(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(sizeName(n), func(b *testing.B) {
			// Left: n rows, k over n/10 distinct values. Right: one row per
			// distinct key, so the join output is exactly n rows.
			left := kernelTable(b, "L", n)
			rightSchema := catalog.MustSchema("Rt", []catalog.Column{
				{Name: "id", Kind: types.KindInt},
				{Name: "k", Kind: types.KindInt},
			})
			right := storage.NewTable(rightSchema)
			for i := 0; i < n/10; i++ {
				_, err := right.Insert(&types.Tuple{Vals: []types.Value{
					types.NewInt(int64(i + 1)), types.NewInt(int64(i)),
				}})
				if err != nil {
					b.Fatal(err)
				}
			}
			scanL := engine.NewScan(left, "L")
			scanR := engine.NewScan(right, "Rt")
			join := engine.NewJoin(scanL, scanR)
			join.HashKeysL = []int{1}                            // L.k
			join.HashKeysR = []int{len(scanL.Schema().Cols) + 1} // Rt.k in the combined schema
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := engine.NewExecCtx()
				rows, err := join.Execute(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n {
					b.Fatalf("join produced %d rows, want %d", len(rows), n)
				}
			}
		})
	}
}

func BenchmarkKernelSemiJoin(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(sizeName(n), func(b *testing.B) {
			left := kernelTable(b, "L", n)
			right := kernelTable(b, "Rt", n/10)
			scanL := engine.NewScan(left, "L")
			scanR := engine.NewScan(right, "Rt")
			ctx := engine.NewExecCtx()
			leftRows, err := scanL.Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			rightRows, err := scanR.Execute(ctx)
			if err != nil {
				b.Fatal(err)
			}
			cond := expr.NewCmp(expr.EQ, expr.NewCol("L", "k"), expr.NewCol("Rt", "k"))
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := engine.NewExecCtx()
				out, err := loose.SemiJoin(leftRows, scanL.Schema(), rightRows, scanR.Schema(),
					[]expr.Expr{cond}, ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) == 0 {
					b.Fatal("semi-join kept no rows")
				}
			}
		})
	}
}

func BenchmarkKernelIVMApply(b *testing.B) {
	const n = 10_000
	const batch = 1_000
	db := storage.NewDB()
	schema := catalog.MustSchema("R", []catalog.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "k", Kind: types.KindInt},
		{Name: "a", Kind: types.KindInt},
	})
	tbl, err := db.CreateTable(schema)
	if err != nil {
		b.Fatal(err)
	}
	keys := int64(n / 10)
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(&types.Tuple{ID: int64(i + 1), Vals: []types.Value{
			types.NewInt(int64(i + 1)),
			types.NewInt(int64(i) % keys),
			types.NewInt(int64(i) % 100),
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	a, err := engine.Analyze(sqlparser.MustParse("SELECT k, a FROM R WHERE a < 50"), db.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	ctx := engine.NewExecCtx()
	view, err := ivm.New(a, db, ctx)
	if err != nil {
		b.Fatal(err)
	}
	// Each iteration flips `a` between 40 and 60 for the first `batch`
	// tuples, moving them across the predicate boundary so every Apply both
	// inserts and deletes view rows.
	mkDeltas := func(toggle bool) []ivm.TupleDelta {
		av := types.NewInt(40)
		if toggle {
			av = types.NewInt(60)
		}
		deltas := make([]ivm.TupleDelta, 0, batch)
		for i := 0; i < batch; i++ {
			id := int64(i + 1)
			nt := &types.Tuple{ID: id, Vals: []types.Value{
				types.NewInt(id), types.NewInt(id % keys), av,
			}}
			deltas = append(deltas, ivm.TupleDelta{Relation: "R", Old: nt, New: nt})
		}
		return deltas
	}
	b.ReportAllocs()
	runtime.GC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := view.Apply(ctx, mkDeltas(i%2 == 0)); err != nil {
			b.Fatal(err)
		}
	}
}
