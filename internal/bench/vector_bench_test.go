package bench

// Vectorized-execution microbenchmarks. Every benchmark here performs the
// same task under two code paths — the columnar batch path (default) and the
// row-at-a-time path (BENCH_NOVECTOR=1 in the environment) — so `make
// bench-vector` can record the two runs back to back into BENCH_vector.json
// as directly comparable "rowpath" and "vector" labels.
//
// The batch-level benches (VectorScan, VectorFilter) reuse every buffer
// (snapshot, batch columns, bitmaps) across operations: after one warm-up
// pass the vector label must run at (near-)zero allocations per op. The Exec
// bench keeps full row materialization in the measured region for context —
// that part of the cost is unchanged by vectorization.

import (
	"os"
	"runtime"
	"testing"

	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/types"
)

// benchNoVector forces the row-at-a-time path so the same benchmark names can
// be re-recorded under the "rowpath" label.
var benchNoVector = os.Getenv("BENCH_NOVECTOR") != ""

// BenchmarkVectorScan scans the table and sums scanned columns — "col" reads
// one column (the classic columnar consumer: an aggregate over a scan),
// "wide" reads every column (SELECT * width). The row path answers by
// materializing rows and reading cells; the vector path snapshots the slab
// and columnizes batch by batch (Col for one column, FillAll for the width).
func BenchmarkVectorScan(b *testing.B) {
	variants := []struct {
		name string
		cols []int
	}{
		{"col", []int{2}},
		{"wide", []int{0, 1, 2}},
	}
	for _, v := range variants {
		for _, n := range kernelSizes {
			b.Run(v.name+"/"+sizeName(n), func(b *testing.B) {
				tbl := kernelTable(b, "R", n)
				scan := engine.NewScan(tbl, "R")
				rs := scan.Schema()
				var sum int64
				var pass func() int64

				if benchNoVector {
					pass = func() int64 {
						ctx := engine.NewExecCtx()
						rows, err := scan.Execute(ctx)
						if err != nil {
							b.Fatal(err)
						}
						var s int64
						for _, r := range rows {
							for _, ci := range v.cols {
								s += r.Vals[ci].Int()
							}
						}
						return s
					}
				} else {
					var snap []*types.Tuple
					var batch expr.Batch
					pass = func() int64 {
						snap = tbl.TuplesInto(snap)
						var s int64
						for lo := 0; lo < len(snap); lo += expr.BatchSize {
							hi := lo + expr.BatchSize
							if hi > len(snap) {
								hi = len(snap)
							}
							batch.Reset(rs, snap[lo:hi])
							if len(v.cols) > 1 && !batch.FillAll() {
								b.Fatal("column fill bailed")
							}
							for _, ci := range v.cols {
								cv, ok := batch.Col(ci)
								if !ok {
									b.Fatal("column fill bailed")
								}
								for _, x := range cv.I {
									s += x
								}
							}
						}
						return s
					}
				}

				want := pass() // warm up snapshot/batch/bitmap buffers
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sum = pass()
				}
				if sum != want {
					b.Fatalf("checksum drifted: %d != %d", sum, want)
				}
			})
		}
	}
}

// BenchmarkVectorFilter counts the rows matching the KernelFilter predicate
// (a < 50). The row path runs Filter.Execute (row materialization included —
// that is how the row path answers anything); the vector path runs the
// compiled kernel + selection-bitmap pass and popcounts, materializing
// nothing. The vector label must stay allocation-free in steady state.
func BenchmarkVectorFilter(b *testing.B) {
	for _, n := range kernelSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			tbl := kernelTable(b, "R", n)
			rs := engine.NewScan(tbl, "R").Schema()
			pred := expr.NewCmp(expr.LT, expr.NewCol("R", "a"), expr.NewConst(types.NewInt(50)))
			if err := pred.Resolve(rs); err != nil {
				b.Fatal(err)
			}
			var pass func() int

			if benchNoVector {
				plan := engine.NewFilter(engine.NewScan(tbl, "R"), pred)
				pass = func() int {
					ctx := engine.NewExecCtx()
					ctx.NoVector = true
					rows, err := plan.Execute(ctx)
					if err != nil {
						b.Fatal(err)
					}
					return len(rows)
				}
			} else {
				vp := expr.CompileVecPred(pred, rs)
				if vp == nil || vp.Residual != nil {
					b.Fatal("predicate did not fully compile to kernels")
				}
				var snap []*types.Tuple
				var batch expr.Batch
				var t, nf expr.Bitmap
				pass = func() int {
					snap = tbl.TuplesInto(snap)
					t = t.Reset(len(snap))
					t.SetAll(len(snap))
					nf = nf.Reset(len(snap))
					nf.SetAll(len(snap))
					for lo := 0; lo < len(snap); lo += expr.BatchSize {
						hi := lo + expr.BatchSize
						if hi > len(snap) {
							hi = len(snap)
						}
						batch.Reset(rs, snap[lo:hi])
						wlo, wn := lo/64, (hi-lo+63)/64
						if !vp.Eval(&batch, t[wlo:wlo+wn], nf[wlo:wlo+wn]) {
							b.Fatal("kernel pass bailed")
						}
					}
					return t.Count()
				}
			}

			pass() // warm up
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if kept := pass(); kept != n/2 {
					b.Fatalf("filter kept %d rows, want %d", kept, n/2)
				}
			}
		})
	}
}

// BenchmarkVectorFilterExec is the full Filter.Execute — selection plus row
// materialization — with the vector path on by default and forced off under
// BENCH_NOVECTOR. Materializing the surviving half of the table dominates
// and is identical on both paths; this bench records how much of the filter
// cost vectorization can and cannot remove.
func BenchmarkVectorFilterExec(b *testing.B) {
	for _, n := range kernelSizes {
		b.Run(sizeName(n), func(b *testing.B) {
			tbl := kernelTable(b, "R", n)
			pred := expr.NewCmp(expr.LT, expr.NewCol("R", "a"), expr.NewConst(types.NewInt(50)))
			scan := engine.NewScan(tbl, "R")
			if err := pred.Resolve(scan.Schema()); err != nil {
				b.Fatal(err)
			}
			plan := engine.NewFilter(scan, pred)
			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := engine.NewExecCtx()
				ctx.NoVector = benchNoVector
				rows, err := plan.Execute(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != n/2 {
					b.Fatalf("filter kept %d rows, want %d", len(rows), n/2)
				}
			}
		})
	}
}
