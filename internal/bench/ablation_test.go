package bench

import (
	"testing"
	"time"
)

// TestAblationProbeShape: disabling any minimality strategy must not shrink
// the candidate set, and on Q7/Q8 semi-joins must demonstrably reduce it.
func TestAblationProbeShape(t *testing.T) {
	tb, err := AblationProbe(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for ri := range tb.Rows {
		full := intCell(t, tb, ri, 1)
		noSel := intCell(t, tb, ri, 2)
		noSJ := intCell(t, tb, ri, 3)
		if noSel < full || noSJ < full {
			t.Errorf("%s: disabling a strategy shrank the probe: full=%d noSel=%d noSJ=%d",
				cell(t, tb, ri, 0), full, noSel, noSJ)
		}
		if noSel == full {
			t.Errorf("%s: selections contributed nothing (full=%d)", cell(t, tb, ri, 0), full)
		}
	}
	// Q7 (row 1) and Q8 (row 2) must show semi-join savings.
	for _, ri := range []int{1, 2} {
		if intCell(t, tb, ri, 3) <= intCell(t, tb, ri, 1) {
			t.Errorf("%s: semi-joins contributed nothing", cell(t, tb, ri, 0))
		}
	}
	// Prior work: the 'no prior work' second-run probe must be non-empty
	// (everything it lists was saved by the state tables).
	for ri := range tb.Rows {
		if intCell(t, tb, ri, 4) == 0 {
			t.Errorf("%s: prior-work column empty", cell(t, tb, ri, 0))
		}
	}
}

// TestAblationOptimizerShape: each disabled optimizer behaviour must
// strictly increase the tight design's enrichments.
func TestAblationOptimizerShape(t *testing.T) {
	tb, err := AblationOptimizer(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for ri := range tb.Rows {
		on := intCell(t, tb, ri, 1)
		off := intCell(t, tb, ri, 2)
		if off <= on {
			t.Errorf("%s: disabling the behaviour did not cost enrichments (on=%d off=%d)",
				cell(t, tb, ri, 0), on, off)
		}
	}
}

// TestAblationBatchingShape: batch beats per-row; parallel beats sequential.
func TestAblationBatchingShape(t *testing.T) {
	tb, err := AblationBatching(tiny(), 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	seq, err := time.ParseDuration(cell(t, tb, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	par, err := time.ParseDuration(cell(t, tb, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	perRow, err := time.ParseDuration(cell(t, tb, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Allow scheduler noise: parallel must not be clearly slower, and
	// per-row must be clearly more expensive than the batch.
	if par > seq+seq/5 {
		t.Errorf("parallel batch (%v) should not be clearly slower than sequential (%v)", par, seq)
	}
	// The per-call overhead adds ~10%; allow a little scheduler noise.
	if float64(perRow) < float64(seq)*1.02 {
		t.Errorf("per-row UDF execution (%v) should cost clearly more than the batch (%v)", perRow, seq)
	}
}
