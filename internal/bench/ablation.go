package bench

import (
	"fmt"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"
	"enrichdb/internal/loose"
	"enrichdb/internal/sqlparser"
)

// AblationProbe quantifies each probe-query minimality strategy of §2.1 by
// disabling them one at a time and counting the candidate tuples (and hence
// enrichments) the loose design would perform. Expected shape: each strategy
// contributes, with selections mattering most on selective queries and
// semi-joins mattering most on joins with selective lookup sides (Q7/Q8).
func AblationProbe(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation — probe-query minimality strategies (candidate tuples)",
		Header: []string{"query", "all strategies", "no selections", "no semi-joins", "no prior work (2nd run)"},
	}
	queries := s.Queries()
	for _, qi := range []int{2, 6, 7} { // Q3, Q7, Q8
		env, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		a, err := engine.Analyze(sqlparser.MustParse(queries[qi]), env.Data.DB.Catalog())
		if err != nil {
			return nil, err
		}
		count := func(opts loose.ProbeOptions) (int, error) {
			probes, err := loose.GenerateProbesOpt(a, env.Data.DB, env.Mgr, nil, opts)
			if err != nil {
				return 0, err
			}
			n := 0
			for _, p := range probes {
				n += len(p.TIDs)
			}
			return n, nil
		}
		full, err := count(loose.ProbeOptions{})
		if err != nil {
			return nil, err
		}
		noSel, err := count(loose.ProbeOptions{NoSelections: true})
		if err != nil {
			return nil, err
		}
		noSJ, err := count(loose.ProbeOptions{NoSemiJoins: true})
		if err != nil {
			return nil, err
		}
		// Prior work needs enriched state: run the query once, then compare
		// probes with and without the state filter.
		if _, err := env.LooseDriver().Execute(queries[qi]); err != nil {
			return nil, err
		}
		noPrior, err := count(loose.ProbeOptions{NoPriorWork: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Q%d", qi+1),
			fmt.Sprintf("%d", full),
			fmt.Sprintf("%d", noSel),
			fmt.Sprintf("%d", noSJ),
			fmt.Sprintf("%d", noPrior),
		})
	}
	t.Notes = append(t.Notes,
		"'no X' columns show the candidate set when strategy X is disabled; larger = that strategy was saving that many enrichments",
		"after the first run the full-strategy probe is empty (prior work); 'no prior work' shows what would be re-enriched")
	return t, nil
}

// AblationOptimizer quantifies the three optimizer behaviours the tight
// design depends on by disabling them individually and measuring enrichments
// (and for the join-order case, latency). Expected shape:
//
//   - without fixed-first conjunct ordering, a derived-then-fixed Q2 variant
//     enriches tuples the camera predicate would have filtered;
//   - without UDF pull-up, Q7 enriches every in-window tuple instead of only
//     the ones joining California;
//   - without join reordering, Q8 enriches every in-window tuple instead of
//     only the California ones.
func AblationOptimizer(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation — optimizer behaviours under the tight design (enrichments)",
		Header: []string{"case", "optimizer on", "optimizer off", "off/on"},
	}
	queries := s.Queries()

	type study struct {
		name string
		// Q2 variant with the derived conditions written first, so query
		// order differs from fixed-first order.
		query string
		opts  engine.BuildOptions
	}
	studies := []study{
		{
			name:  "fixed-first ordering (Q2 variant)",
			query: "SELECT * FROM MultiPie WHERE gender = 1 AND expression = 2 AND CameraID < 3",
			opts:  engine.BuildOptions{NoFixedFirstOrdering: true},
		},
		{
			name:  "UDF pull-up above joins (Q7)",
			query: queries[6],
			opts:  engine.BuildOptions{NoUDFPullUp: true},
		},
		{
			name:  "expensive-join deferral (Q8)",
			query: queries[7],
			opts:  engine.BuildOptions{NoJoinReorder: true},
		},
	}
	for _, st := range studies {
		on, err := tightEnrichments(s, st.query, engine.BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s on: %w", st.name, err)
		}
		off, err := tightEnrichments(s, st.query, st.opts)
		if err != nil {
			return nil, fmt.Errorf("%s off: %w", st.name, err)
		}
		ratio := 1.0
		if on > 0 {
			ratio = float64(off) / float64(on)
		}
		t.Rows = append(t.Rows, []string{
			st.name,
			fmt.Sprintf("%d", on),
			fmt.Sprintf("%d", off),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"each optimizer behaviour prevents enrichments the paper's tight design avoids; off/on > 1 quantifies its contribution")
	return t, nil
}

func tightEnrichments(s Scale, query string, opts engine.BuildOptions) (int64, error) {
	env, err := NewEnv(s, dataset.SingleFunctionSpecs())
	if err != nil {
		return 0, err
	}
	drv := env.TightDriver()
	drv.BuildOptions = opts
	res, err := drv.Execute(query)
	if err != nil {
		return 0, err
	}
	return res.Enrichments, nil
}

// AblationBatching reproduces the paper's batched-vs-per-row execution
// comparison (7.46 vs 7.72 ms/tweet measured per object): the same set of
// enrichment requests is executed as one batch, as per-request invocations
// (emulating per-row UDF calls, each paying the invocation overhead), and as
// a parallel batch. Using the same machinery for all three isolates the
// batching/invocation effect from query-plan noise.
func AblationBatching(s Scale, extra time.Duration) (*Table, error) {
	sc := s
	sc.ExtraCost = extra
	t := &Table{
		Title:  "Ablation — batched vs per-row enrichment execution",
		Header: []string{"execution", "per-object cost", "total"},
	}

	env, err := NewEnv(sc, dataset.SingleFunctionSpecs())
	if err != nil {
		return nil, err
	}
	// Build a fixed request set (every MultiPie gender enrichment).
	tbl := env.Data.DB.MustTable("MultiPie")
	fi := tbl.Schema().ColIndex("feature")
	var reqs []loose.Request
	for _, tid := range tbl.IDs() {
		reqs = append(reqs, loose.Request{
			Relation: "MultiPie", TID: tid, Attr: "gender", FnID: 0,
			Feature: tbl.Get(tid).Vals[fi].Vector(),
		})
	}
	n := time.Duration(len(reqs))

	// The artificial model cost spins on wall clock, so a preempted run
	// over-reports; take the best of a few repetitions per mode.
	const reps = 3
	best := func(run func() (time.Duration, error)) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < reps; i++ {
			d, err := run()
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}

	seq := &loose.LocalEnricher{Mgr: env.Mgr}
	seqTotal, err := best(func() (time.Duration, error) {
		_, timing, err := seq.EnrichBatch(reqs)
		return timing.Compute, err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"batch (1 worker)", dur(seqTotal / n), dur(seqTotal)})

	par := &loose.LocalEnricher{Mgr: env.Mgr, Workers: -1}
	parTotal, err := best(func() (time.Duration, error) {
		_, timing, err := par.EnrichBatch(reqs)
		return timing.Compute, err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"batch (parallel)", dur(parTotal / n), dur(parTotal)})

	// Per-row: one invocation per request, each paying a per-call overhead
	// (~10% of the function cost; the paper measured ~3.5% between PL/pgSQL
	// UDF calls and batched Python execution — we use a wider margin so the
	// effect is visible above scheduler noise at microsecond costs).
	overhead := extra / 10
	perRowTotal, err := best(func() (time.Duration, error) {
		start := time.Now()
		for i := range reqs {
			end := time.Now().Add(overhead)
			for time.Now().Before(end) {
			}
			if _, _, err := seq.EnrichBatch(reqs[i : i+1]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"per-row invocation", dur(perRowTotal / n), dur(perRowTotal)})

	t.Notes = append(t.Notes,
		"paper shape: batched server execution slightly cheaper per object than per-row UDFs (7.46 vs 7.72 ms/tweet)",
		"the parallel row gains with available cores (models are CPU-bound; under a CPU quota it matches the sequential batch)")
	return t, nil
}
