package bench

import (
	"fmt"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/progressive"
)

// Exp1fWorkers measures the workers axis the parallel epoch executor adds:
// the same progressive Q3 run at increasing worker counts, for both designs.
// Reported per run: epoch count, enrichments, summed epoch wall-clock, and
// the speedup over the Workers:1 baseline of the same design.
//
// Expected shape: the tight design's epoch wall-clock drops as workers grow
// even on a single core — concurrent rows overlap their per-invocation
// overhead windows and micro-batching pays the tax once per batch (the
// coalesced column counts the rides). The loose design's enrichment is pure
// model compute, so its speedup tracks physical cores and stays ~flat when
// only one is available. Result correctness is worker-count-independent
// (equivalence battery), so the enrichments column must not vary by row.
func Exp1fWorkers(s Scale, workerCounts []int) (*Table, error) {
	t := &Table{
		Title:  "Exp 1f — epoch wall-clock vs Workers (progressive Q3)",
		Header: []string{"design", "workers", "epochs", "enrichments", "epoch wall", "udf payments", "coalesced", "speedup"},
	}
	// Per-object model cost so epochs carry real enrichment work, and a
	// per-invocation overhead so the tight design's batching has a tax to
	// amortize (the paper's per-row UDF invocation measured 7.72 ms/tweet).
	sc := s
	sc.ExtraCost = 100 * time.Microsecond
	const invokeOverhead = 1500 * time.Microsecond

	for _, design := range []progressive.Design{progressive.Loose, progressive.Tight} {
		var baseWall time.Duration
		for _, workers := range workerCounts {
			env, err := NewEnv(sc, dataset.SingleFunctionSpecs())
			if err != nil {
				return nil, err
			}
			quality, err := env.QualityFn(sc.Queries()[2])
			if err != nil {
				return nil, err
			}
			// Pin planning costs so every worker count plans the identical
			// epoch sequence: the wall-clock column then compares the same
			// work, and the enrichments column is guaranteed constant.
			for _, attr := range []string{"sentiment", "topic"} {
				for _, fn := range env.Mgr.Family("TweetData", attr).Functions {
					fn.PinCost = true
					fn.CostEst = sc.ExtraCost + 20*time.Microsecond
				}
			}
			res, err := progressive.Run(progressive.Config{
				Design:         design,
				Query:          sc.Queries()[2],
				DB:             env.Data.DB,
				Mgr:            env.Mgr,
				Strategy:       progressive.SBFO,
				EpochBudget:    2 * time.Millisecond,
				MaxEpochs:      40,
				Seed:           sc.Seed,
				Workers:        workers,
				InvokeOverhead: invokeOverhead,
				Quality:        quality,
				Tracer:         env.Tracer,
			})
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", design, workers, err)
			}
			var wall time.Duration
			for _, ep := range res.Epochs {
				wall += ep.Wall
			}
			if workers == workerCounts[0] {
				baseWall = wall
			}
			speedup := 0.0
			if wall > 0 {
				speedup = float64(baseWall) / float64(wall)
			}
			t.Rows = append(t.Rows, []string{
				design.String(),
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%d", len(res.Epochs)),
				fmt.Sprintf("%d", res.TotalEnrichments),
				dur(wall),
				fmt.Sprintf("%d", res.UDFPayments),
				fmt.Sprintf("%d", res.UDFCoalesced),
				fmt.Sprintf("%.2fx", speedup),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: tight epoch wall-clock improves with workers (overlapped + batched invocation overhead); loose tracks physical cores",
		"enrichments are identical across worker counts by the equivalence guarantee")
	return t, nil
}
