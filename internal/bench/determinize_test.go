package bench

import "testing"

// TestDeterminizerComparisonShape: all determinizers produce sane
// accuracies, and the ensembles are not clearly worse than the average
// single function.
func TestDeterminizerComparisonShape(t *testing.T) {
	tb, err := DeterminizerComparison(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) < 5 { // 3 ensembles + >= 2 single functions
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	var ensembleMin, singleSum float64
	singles := 0
	ensembleMin = 1
	for ri := range tb.Rows {
		acc := floatCell(t, tb, ri, 1)
		if acc < 0.34 { // three classes: must beat chance
			t.Errorf("%s accuracy %.3f at or below chance", cell(t, tb, ri, 0), acc)
		}
		if ri < 3 {
			if acc < ensembleMin {
				ensembleMin = acc
			}
		} else {
			singleSum += acc
			singles++
		}
	}
	singleAvg := singleSum / float64(singles)
	if ensembleMin < singleAvg-0.05 {
		t.Errorf("weakest ensemble (%.3f) clearly below average single function (%.3f)",
			ensembleMin, singleAvg)
	}
}
