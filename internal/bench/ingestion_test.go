package bench

import (
	"testing"
	"time"
)

// TestIngestionRateShape: lazy ingestion throughput must not depend on model
// cost; eager throughput must collapse as models get expensive.
func TestIngestionRateShape(t *testing.T) {
	tb, err := IngestionRate(300, []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for ri := range tb.Rows {
		lazy := floatCell(t, tb, ri, 1)
		eager := floatCell(t, tb, ri, 2)
		if eager >= lazy {
			t.Errorf("row %d: eager (%v/s) should be slower than lazy (%v/s)", ri, eager, lazy)
		}
	}
	// The slowdown must grow with model cost.
	e0 := floatCell(t, tb, 0, 2)
	eN := floatCell(t, tb, len(tb.Rows)-1, 2)
	if eN >= e0 {
		t.Errorf("eager throughput should collapse with model cost: %v -> %v events/s", e0, eN)
	}
	// At 1ms/object eager ingestion is bounded near 1000 events/s — the
	// paper's "10s of events per second" at their 100ms+ models.
	if eN > 1100 {
		t.Errorf("eager at 1ms/object should be <= ~1000 events/s, got %v", eN)
	}
}
