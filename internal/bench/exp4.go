package bench

import (
	"fmt"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/loose"
	"enrichdb/internal/metrics"
	"enrichdb/internal/progressive"
)

// Exp4Overhead reproduces the time-overhead experiment: the share of a
// progressive run spent on non-enrichment tasks — query setup, plan
// selection, delta-answer computation, state updates and UDF invocation —
// against the time spent executing enrichment functions, plus the
// IVM-vs-recomputation comparison on Q7. Expected shape: overheads are a
// small fraction of enrichment, and IVM beats per-epoch re-execution
// clearly.
func Exp4Overhead(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Exp 4 — time overhead of non-enrichment tasks (progressive runs)",
		Header: []string{"query", "design", "setup", "plan", "delta", "state", "udf", "enrich", "overhead%"},
	}
	// Inflate function cost so the overhead ratio is meaningful at bench
	// scale (the paper's functions cost 100ms+/object).
	sc := s
	sc.ExtraCost = 100 * time.Microsecond

	queries := sc.Queries()
	for _, qi := range []int{0, 2, 6} { // Q1, Q3, Q7
		for _, design := range []progressive.Design{progressive.Loose, progressive.Tight} {
			res, err := runProgressive(sc, dataset.SingleFunctionSpecs(), design,
				queries[qi], progressive.SBFO, 4*time.Millisecond, 200)
			if err != nil {
				return nil, fmt.Errorf("Q%d %s: %w", qi+1, design, err)
			}
			o := res.Overhead
			// The loose design's enrichment happens at the server; count
			// the per-epoch server compute recorded in the reports.
			enrich := o.Enrich
			if design == progressive.Loose {
				enrich = 0
				for _, ep := range res.Epochs {
					enrich += ep.EnrichTime
				}
			}
			overhead := o.Plan + o.Delta + o.State + o.UDF
			pct := 0.0
			if enrich > 0 {
				pct = 100 * float64(overhead) / float64(enrich)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("Q%d", qi+1), design.String(),
				dur(o.Setup), dur(o.Plan), dur(o.Delta), dur(o.State), dur(o.UDF),
				dur(enrich), fmt.Sprintf("%.1f%%", pct),
			})
		}
	}

	// IVM vs per-epoch re-execution on Q7, with many small epochs so the
	// per-epoch maintenance cost difference accumulates.
	q7 := queries[6]
	ivmRes, err := runProgressive(sc, dataset.SingleFunctionSpecs(), progressive.Loose,
		q7, progressive.SBFO, 200*time.Microsecond, 400)
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(sc, dataset.SingleFunctionSpecs())
	if err != nil {
		return nil, err
	}
	quality, err := env.QualityFn(q7)
	if err != nil {
		return nil, err
	}
	reRes, err := progressive.Run(progressive.Config{
		Design: progressive.Loose, Query: q7, DB: env.Data.DB, Mgr: env.Mgr,
		Enricher: &loose.LocalEnricher{Mgr: env.Mgr},
		Strategy: progressive.SBFO, EpochBudget: 200 * time.Microsecond, MaxEpochs: 400,
		Seed: sc.Seed, Quality: quality, Recompute: true, Tracer: env.Tracer,
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("IVM vs re-execution (Q7): delta maintenance %s vs from-scratch %s across %d/%d epochs",
			dur(ivmRes.Overhead.Delta), dur(reRes.Overhead.Delta), len(ivmRes.Epochs), len(reRes.Epochs)),
		"paper shape: total non-enrichment overhead is a few percent of enrichment time; IVM clearly beats re-execution")
	return t, nil
}

// Exp4WorkersOverhead extends Exp 4 with the workers axis: the tight
// design's UDF-invocation overhead on Q3 as the epoch worker count grows.
// Expected shape: overhead payments drop (micro-batching coalesces
// concurrent read_udf calls into one payment) and the UDF overhead share
// shrinks, while plan/delta/state overheads stay put — parallelism attacks
// exactly the per-row invocation tax the paper measured at 7.72 vs
// 7.46 ms/tweet for per-row vs batched UDFs.
func Exp4WorkersOverhead(s Scale, workerCounts []int) (*Table, error) {
	t := &Table{
		Title:  "Exp 4 (workers axis) — tight UDF overhead vs epoch workers (Q3)",
		Header: []string{"workers", "plan", "delta", "state", "udf", "enrich", "payments", "coalesced", "overhead%"},
	}
	sc := s
	sc.ExtraCost = 100 * time.Microsecond
	q3 := sc.Queries()[2]
	for _, workers := range workerCounts {
		env, err := NewEnv(sc, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		quality, err := env.QualityFn(q3)
		if err != nil {
			return nil, err
		}
		res, err := progressive.Run(progressive.Config{
			Design:         progressive.Tight,
			Query:          q3,
			DB:             env.Data.DB,
			Mgr:            env.Mgr,
			Strategy:       progressive.SBFO,
			EpochBudget:    4 * time.Millisecond,
			MaxEpochs:      80,
			Seed:           sc.Seed,
			Workers:        workers,
			InvokeOverhead: time.Millisecond,
			Quality:        quality,
			Tracer:         env.Tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", workers, err)
		}
		o := res.Overhead
		overhead := o.Plan + o.Delta + o.State + o.UDF
		pct := 0.0
		if o.Enrich > 0 {
			pct = 100 * float64(overhead) / float64(o.Enrich)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", workers),
			dur(o.Plan), dur(o.Delta), dur(o.State), dur(o.UDF), dur(o.Enrich),
			fmt.Sprintf("%d", res.UDFPayments),
			fmt.Sprintf("%d", res.UDFCoalesced),
			fmt.Sprintf("%.1f%%", pct),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: workers cut overhead payments via micro-batching; coalesced counts read_udf calls riding a leader's payment",
		"the udf column sums per-call spans across workers (concurrent waits overlap), so the wall-clock win appears in Exp 1f's epoch wall, not in this sum")
	return t, nil
}

// Exp5Storage reproduces the storage-overhead experiment and Table 10: sizes
// of PlanSpaceTable, PlanTable, the IVM and the state tables, and the effect
// of the state-cutoff threshold on state size, re-executions and the
// progressive score (Q3 over the large-domain topic attribute). Expected
// shape: temporary structures are tiny relative to data; higher cutoffs
// shrink state but force re-executions that depress the progressive score.
func Exp5Storage(s Scale) (*Table, *Table, error) {
	// A larger topic domain makes the cutoff bite (the paper's topic has
	// domain 40).
	sc := s
	if sc.TopicDomain < 20 {
		sc.TopicDomain = 20
	}
	q3 := sc.Queries()[2]

	sizes := &Table{
		Title:  "Exp 5 — storage overhead of progressive structures (Q3)",
		Header: []string{"structure", "bytes"},
	}
	res, err := runProgressive(sc, dataset.PaperFamilySpecs(), progressive.Loose,
		q3, progressive.SBFO, progressiveBudget, progressiveEpochs)
	if err != nil {
		return nil, nil, err
	}
	dataBytes := int64(sc.Tweets) * int64(12*8+64) // feature vector + fixed columns, rough
	sizes.Rows = append(sizes.Rows,
		[]string{"PlanSpaceTable", fmt.Sprintf("%d", res.PlanSpaceBytes)},
		[]string{"PlanTable (max epoch)", fmt.Sprintf("%d", res.MaxPlanBytes)},
		[]string{"IVM view", fmt.Sprintf("%d", res.ViewBytes)},
		[]string{"data table (approx)", fmt.Sprintf("%d", dataBytes)},
	)
	sizes.Notes = append(sizes.Notes,
		"paper shape: temporary tables and the IVM are orders of magnitude smaller than the data")

	cut := &Table{
		Title:  "Table 10 — state-cutoff threshold vs state size, re-executions and PS (Q3)",
		Header: []string{"cutoff", "state bytes", "re-executions", "PS"},
	}
	// Re-executions must carry real cost for the PS effect to show: charge
	// each function an artificial per-object cost, as the paper's heavy
	// models naturally have.
	cutScale := sc
	cutScale.ExtraCost = 60 * time.Microsecond
	for _, threshold := range []float64{0, 0.2, 0.5, 0.8} {
		env, err := NewEnv(cutScale, dataset.PaperFamilySpecs())
		if err != nil {
			return nil, nil, err
		}
		env.Mgr.SetCutoff(threshold)
		quality, err := env.QualityFn(q3)
		if err != nil {
			return nil, nil, err
		}
		r, err := progressive.Run(progressive.Config{
			Design: progressive.Loose, Query: q3, DB: env.Data.DB, Mgr: env.Mgr,
			Enricher: &loose.LocalEnricher{Mgr: env.Mgr},
			Strategy: progressive.SBFO, EpochBudget: progressiveBudget, MaxEpochs: progressiveEpochs,
			Seed: sc.Seed, Quality: quality, Tracer: env.Tracer,
		})
		if err != nil {
			return nil, nil, err
		}
		c := env.Mgr.Counters()
		ps := metrics.ProgressiveScore(metrics.Normalize(r.Quality), 0.05)
		cut.Rows = append(cut.Rows, []string{
			fmt.Sprintf("%.1f", threshold),
			fmt.Sprintf("%d", env.Mgr.StateSizeBytes()),
			fmt.Sprintf("%d", c.ReExecutions),
			fmt.Sprintf("%.3f", ps),
		})
	}
	cut.Notes = append(cut.Notes,
		"paper shape: higher cutoff -> smaller state, more re-executions, lower PS")
	return sizes, cut, nil
}
