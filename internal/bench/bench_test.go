package bench

import (
	"enrichdb/internal/dataset"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tiny is a fast scale for shape-validation tests.
func tiny() Scale {
	return Scale{Name: "tiny", Tweets: 600, Images: 300, TopicDomain: 6, TimeRange: 10000, Seed: 1}
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tb.Title, row, col)
	}
	return tb.Rows[row][col]
}

func intCell(t *testing.T, tb *Table, row, col int) int64 {
	t.Helper()
	v, err := strconv.ParseInt(cell(t, tb, row, col), 10, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %q not an int: %v", row, col, tb.Title, err)
	}
	return v
}

func floatCell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tb, row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %q not a float: %v", row, col, tb.Title, err)
	}
	return v
}

// TestExp1aShape validates Table 7's comparative shape.
func TestExp1aShape(t *testing.T) {
	tb, err := Exp1aNumEnrichments(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 9 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for qi := 0; qi < 9; qi++ {
		baseline := intCell(t, tb, qi, 1)
		loose := intCell(t, tb, qi, 2)
		tight := intCell(t, tb, qi, 3)
		if loose > baseline || tight > baseline {
			t.Errorf("Q%d: designs exceed baseline: b=%d l=%d t=%d", qi+1, baseline, loose, tight)
		}
		if tight > loose {
			t.Errorf("Q%d: tight (%d) > loose (%d)", qi+1, tight, loose)
		}
		if baseline <= 2*loose && qi != 3 && qi != 4 && qi != 5 {
			// Selective queries should save a lot vs the baseline (the
			// self-joins with broad camera predicates save less).
			t.Logf("Q%d: baseline %d vs loose %d — modest savings", qi+1, baseline, loose)
		}
	}
	// Q1 (row 0), Q7 (row 6), Q9 (row 8): single derived predicate or
	// fixed-only grouping — equality expected.
	for _, qi := range []int{0, 6, 8} {
		if intCell(t, tb, qi, 2) != intCell(t, tb, qi, 3) {
			t.Errorf("Q%d: expected loose == tight, got %s vs %s",
				qi+1, cell(t, tb, qi, 2), cell(t, tb, qi, 3))
		}
	}
	// Q2 (row 1): strict tight savings.
	if !(intCell(t, tb, 1, 3) < intCell(t, tb, 1, 2)) {
		t.Errorf("Q2: tight (%s) should strictly beat loose (%s)", cell(t, tb, 1, 3), cell(t, tb, 1, 2))
	}
}

// TestExp1bShape validates Table 8's trend: the tight/loose ratio shrinks
// with selectivity while loose stays flat.
func TestExp1bShape(t *testing.T) {
	tb, err := Exp1bSelectivity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	first := floatCell(t, tb, 0, 4)             // ratio at 1%
	last := floatCell(t, tb, len(tb.Rows)-1, 4) // ratio at 75%
	if first > last {
		t.Errorf("tight/loose ratio should grow with passing fraction: %.2f @1%% vs %.2f @75%%", first, last)
	}
	// Loose is flat: its counts differ by at most a few percent across
	// selectivities (same probe result regardless of the topic predicate's
	// threshold when the attribute is unenriched).
	l0 := intCell(t, tb, 0, 2)
	lN := intCell(t, tb, len(tb.Rows)-1, 2)
	if l0 != lN {
		t.Errorf("loose counts vary with selectivity: %d vs %d", l0, lN)
	}
}

// TestExp1cShape validates Figure 5: cumulative cost below eager, and
// non-decreasing.
func TestExp1cShape(t *testing.T) {
	tb, points, err := Exp1cCumulative(tiny(), 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(points) != 10 {
		t.Fatalf("points: %d", len(points))
	}
	var prev time.Duration
	for _, p := range points {
		if p.CumulativeCost < prev {
			t.Errorf("cumulative cost decreased at query %d", p.Query)
		}
		prev = p.CumulativeCost
		if p.CumulativeCost > p.EagerCost {
			t.Errorf("query %d: cumulative (%v) exceeded eager (%v)", p.Query, p.CumulativeCost, p.EagerCost)
		}
	}
	// Later queries should be cheaper than early ones on average (state
	// reuse), so the curve flattens: compare first and last increments.
	firstInc := points[0].CumulativeCost
	lastInc := points[len(points)-1].CumulativeCost - points[len(points)-2].CumulativeCost
	if lastInc > firstInc*2 {
		t.Errorf("curve should flatten: first increment %v, last %v", firstInc, lastInc)
	}
}

// TestExp1dRuns smoke-tests the latency table.
func TestExp1dRuns(t *testing.T) {
	tb, err := Exp1dLatency(tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 9 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for qi := range tb.Rows {
		if cell(t, tb, qi, 1) == "0s" && cell(t, tb, qi, 2) == "0s" {
			t.Errorf("Q%d: zero latency measured", qi+1)
		}
	}
}

// TestExp1eShape validates Table 11: the enrichment server dominates the
// loose design's time once functions are expensive, and network time is
// nonzero over the TCP transport.
func TestExp1eShape(t *testing.T) {
	s := tiny()
	s.ExtraCost = 50 * time.Microsecond // make ES the dominant component
	tb, err := Exp1eTimeSplit(s, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	for qi := range tb.Rows {
		net, err := time.ParseDuration(cell(t, tb, qi, 2))
		if err != nil {
			t.Fatalf("Q%d network: %v", qi+1, err)
		}
		if net <= 0 {
			t.Errorf("Q%d: no network time over TCP", qi+1)
		}
	}
}

// TestExp2Shape validates Figures 6 and 7: quality curves rise, and the
// tight design's PS is not clearly below the loose design's.
func TestExp2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	fig7, fig6, err := Exp2Progressiveness(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + fig7.String())
	t.Log("\n" + fig6.String())
	if len(fig7.Rows) != 8 { // 4 runs × 2 designs
		t.Fatalf("fig7 rows: %d", len(fig7.Rows))
	}
	for _, row := range fig7.Rows {
		series := strings.Fields(row[2])
		first, _ := strconv.ParseFloat(series[0], 64)
		last, _ := strconv.ParseFloat(series[len(series)-1], 64)
		if last < first {
			t.Errorf("%s/%s: quality declined overall (%v -> %v)", row[0], row[1], first, last)
		}
		if last < 0.9 {
			t.Errorf("%s/%s: normalized quality should approach 1, got %v", row[0], row[1], last)
		}
	}
	if len(fig6.Rows) != 9 {
		t.Fatalf("fig6 rows: %d", len(fig6.Rows))
	}
}

// TestExp3Shape validates Figure 8: SB(FO) not worse than SB(OO).
func TestExp3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	tb, err := Exp3PlanStrategies(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 12 { // 3 queries × (3 strategies + Benefit)
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// Per query: PS(FO) and PS(Benefit) should not be clearly below PS(OO).
	for q := 0; q < 3; q++ {
		oo := floatCell(t, tb, q*4+0, 2)
		fo := floatCell(t, tb, q*4+2, 2)
		bn := floatCell(t, tb, q*4+3, 2)
		if fo < oo*0.75 {
			t.Errorf("%s: SB(FO)=%.3f clearly below SB(OO)=%.3f", cell(t, tb, q*4, 0), fo, oo)
		}
		if bn < oo*0.75 {
			t.Errorf("%s: Benefit=%.3f clearly below SB(OO)=%.3f", cell(t, tb, q*4, 0), bn, oo)
		}
	}
}

// TestExp4Shape validates the overhead experiment: everything measured, and
// IVM-vs-recompute note emitted.
func TestExp4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	tb, err := Exp4Overhead(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 6 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "IVM vs re-execution") {
			found = true
		}
	}
	if !found {
		t.Error("missing IVM-vs-recompute note")
	}
}

// TestExp1fWorkersShape validates the workers axis: both designs produce a
// row per worker count, enrichments are worker-count-independent (the
// equivalence guarantee), and the tight design's epoch wall-clock improves
// with workers.
func TestExp1fWorkersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	tb, err := Exp1fWorkers(tiny(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 4 { // 2 designs × 2 worker counts
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for _, pair := range [][2]int{{0, 1}, {2, 3}} {
		if cell(t, tb, pair[0], 3) != cell(t, tb, pair[1], 3) {
			t.Errorf("%s enrichments vary with workers: %s vs %s",
				cell(t, tb, pair[0], 0), cell(t, tb, pair[0], 3), cell(t, tb, pair[1], 3))
		}
	}
	// Tight at workers=4 (last row) must beat its workers=1 baseline.
	var speedup float64
	if _, err := fmt.Sscanf(cell(t, tb, 3, 7), "%fx", &speedup); err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell(t, tb, 3, 7), err)
	}
	if speedup <= 1.1 {
		t.Errorf("tight workers=4 speedup %.2fx; want > 1.1x", speedup)
	}
}

// TestExp4WorkersShape validates the Exp 4 workers axis: one row per worker
// count and strictly fewer overhead payments once workers coalesce.
func TestExp4WorkersShape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	tb, err := Exp4WorkersOverhead(tiny(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.String())
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	if p1, p4 := intCell(t, tb, 0, 6), intCell(t, tb, 1, 6); p4 >= p1 {
		t.Errorf("payments did not drop with workers: %d -> %d", p1, p4)
	}
	if c4 := intCell(t, tb, 1, 7); c4 == 0 {
		t.Error("no coalesced read_udf calls at workers=4")
	}
}

// TestExp5Shape validates Table 10's monotonicity: higher cutoffs shrink
// state and do not reduce re-executions.
func TestExp5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("progressive sweep")
	}
	sizes, cut, err := Exp5Storage(tiny())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + sizes.String())
	t.Log("\n" + cut.String())
	if len(cut.Rows) != 4 {
		t.Fatalf("cutoff rows: %d", len(cut.Rows))
	}
	state0 := intCell(t, cut, 0, 1)
	stateN := intCell(t, cut, len(cut.Rows)-1, 1)
	if stateN >= state0 {
		t.Errorf("state size should shrink with cutoff: %d -> %d", state0, stateN)
	}
	re0 := intCell(t, cut, 0, 2)
	reN := intCell(t, cut, len(cut.Rows)-1, 2)
	if reN < re0 {
		t.Errorf("re-executions should not shrink with cutoff: %d -> %d", re0, reN)
	}
}

// TestBaselineEnrichments sanity-checks the complete-enrichment counts:
// every derived attribute of every referenced relation, once per function.
func TestBaselineEnrichments(t *testing.T) {
	s := tiny()
	env, err := NewEnv(s, map[[2]string][]dataset.ModelSpec{
		{"TweetData", "sentiment"}: {{Kind: "gnb"}},
		{"TweetData", "topic"}:     {{Kind: "gnb"}},
		{"MultiPie", "gender"}:     {{Kind: "gnb"}},
		{"MultiPie", "expression"}: {{Kind: "gnb"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := env.BaselineEnrichments(s.Queries()[2]) // Q3: TweetData only
	if err != nil {
		t.Fatal(err)
	}
	want := int64(s.Tweets * 2) // two derived attributes, one function each
	if got != want {
		t.Errorf("baseline = %d want %d", got, want)
	}
	// Q8 references TweetData twice and State once: still counted once.
	got8, err := env.BaselineEnrichments(s.Queries()[7])
	if err != nil {
		t.Fatal(err)
	}
	if got8 != want {
		t.Errorf("self-join baseline = %d want %d", got8, want)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	out := tb.String()
	for _, want := range []string{"== demo ==", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
