package bench

// Observability-off benchmark guard. The profiling machinery added for
// EXPLAIN ANALYZE must be zero-alloc-and-off by default: a BenchmarkVectorFilterExec
// iteration with ExecCtx.Prof nil may not allocate more than the same
// iteration did before the instrumentation existed. The exact-equality half
// of that contract (wrapped Execute == raw execute) lives in
// internal/engine's TestProfilerOffZeroAlloc; this guard pins the bench
// shape itself — deterministic allocs with profiling off, and a strictly
// higher count with a profiler attached (proving the instrumentation is
// live yet fully excluded from the disabled path).

import (
	"testing"

	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/types"
)

func TestObservabilityOffAllocGuard(t *testing.T) {
	const n = 10_000
	tbl := kernelTable(t, "R", n)
	pred := expr.NewCmp(expr.LT, expr.NewCol("R", "a"), expr.NewConst(types.NewInt(50)))
	scan := engine.NewScan(tbl, "R")
	if err := pred.Resolve(scan.Schema()); err != nil {
		t.Fatal(err)
	}
	plan := engine.NewFilter(scan, pred)

	run := func(profiled bool) float64 {
		return testing.AllocsPerRun(10, func() {
			ctx := engine.NewExecCtx()
			if profiled {
				ctx.Prof = engine.NewProfiler()
			}
			rows, err := plan.Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != n/2 {
				t.Fatalf("filter kept %d rows, want %d", len(rows), n/2)
			}
		})
	}

	off1 := run(false)
	off2 := run(false)
	on := run(true)
	t.Logf("allocs/op: off=%v on=%v", off1, on)
	if off1 != off2 {
		t.Fatalf("disabled-profile allocs not deterministic: %v vs %v", off1, off2)
	}
	if on <= off1 {
		t.Fatalf("profiled run allocated %v/op, disabled %v/op — instrumentation appears dead", on, off1)
	}
}
