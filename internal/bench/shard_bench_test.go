package bench

// Sharding benchmarks backing BENCH_shard.json (`make bench-shard`):
//
//   - BenchmarkShardScan measures scatter-gather scan scaling: the same
//     filter scan over the same rows on 1/2/4/8 shard replicas through the
//     public query path, merged back to byte-identical unsharded order.
//     On a multi-core host the per-shard scans run in parallel; on a
//     single-core host the series instead measures the scatter overhead
//     (per-shard planning + merge), which is the honest number there.
//   - BenchmarkShardHedgeTail measures the hedged-request tail: a 3-server
//     enrichment fleet where one server is 10× slower answers identical
//     batches with hedging on and off; the recorded p99-ns metric is the
//     headline pair (hedging should clip the straggler's tail, the ns/op
//     means stay comparable).

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"enrichdb"
	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
	"enrichdb/internal/shard"
)

const (
	shardScanRows = 100_000
	shardScanSQL  = "SELECT id, v FROM R WHERE v < 1000"
)

func shardScanDB(b *testing.B, shards int) *enrichdb.DB {
	b.Helper()
	db, err := enrichdb.OpenSharded(enrichdb.ShardConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	if err := db.CreateRelation("R", []enrichdb.Column{
		{Name: "id", Kind: enrichdb.KindInt},
		{Name: "v", Kind: enrichdb.KindInt},
	}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < shardScanRows; i++ {
		// v = i, so the `v < 1000` predicate keeps exactly 1% of rows.
		if _, err := db.Insert("R", int64(i+1),
			enrichdb.Int(int64(i+1)), enrichdb.Int(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkShardScan(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := shardScanDB(b, shards)
			defer db.Close()
			// Warm-up proves the scatter path answers correctly before timing.
			rows, err := db.Query(shardScanSQL)
			if err != nil {
				b.Fatal(err)
			}
			if rows.Len() != shardScanRows/100 {
				b.Fatalf("scan kept %d rows, want %d", rows.Len(), shardScanRows/100)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(shardScanSQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hedgeEnricher answers instantly except for a fixed per-batch delay — the
// straggler server in the tail benchmark.
type hedgeEnricher struct{ delay time.Duration }

func (e *hedgeEnricher) EnrichBatch(reqs []loose.Request) ([]loose.Response, loose.BatchTiming, error) {
	if e.delay > 0 {
		time.Sleep(e.delay)
	}
	out := make([]loose.Response, len(reqs))
	for i, r := range reqs {
		out[i] = loose.Response{Relation: r.Relation, TID: r.TID, Attr: r.Attr,
			FnID: r.FnID, Gen: r.Gen, Probs: []float64{1, 0}}
	}
	return out, loose.BatchTiming{}, nil
}

func (e *hedgeEnricher) Close() error { return nil }

func benchmarkHedgeTail(b *testing.B, hedgeDelay time.Duration) {
	const fleetSize = 3
	const slow = 5 * time.Millisecond // the straggler: ~10× a fast batch
	addrs := make([]string, fleetSize)
	for i := 0; i < fleetSize; i++ {
		var delay time.Duration
		if i == 0 {
			delay = slow
		}
		srv, bound, err := remote.ServeEnricher("127.0.0.1:0", &hedgeEnricher{delay: delay}, remote.ServerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = bound
	}
	fleet, err := shard.DialFleet(addrs, shard.FleetOptions{HedgeDelay: hedgeDelay, SubBatch: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	reqs := make([]loose.Request, 96)
	for i := range reqs {
		reqs[i] = loose.Request{Relation: "R", TID: int64(i + 1), Attr: "label", FnID: 1}
	}
	// Untimed warm-up: dials, worker pools and the first slow-server round
	// trip all land here, not in the tail measurement.
	for i := 0; i < 3; i++ {
		if _, _, err := fleet.EnrichBatch(reqs); err != nil {
			b.Fatal(err)
		}
	}
	durs := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, _, err := fleet.EnrichBatch(reqs); err != nil {
			b.Fatal(err)
		}
		durs = append(durs, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	// Override the default ns/op (the mean) with the p99 batch latency —
	// the tail is the headline this benchmark exists to compare.
	b.ReportMetric(float64(durs[len(durs)*99/100].Nanoseconds()), "ns/op")
}

func BenchmarkShardHedgeTail(b *testing.B) {
	b.Run("hedged", func(b *testing.B) { benchmarkHedgeTail(b, time.Millisecond) })
	b.Run("nohedge", func(b *testing.B) { benchmarkHedgeTail(b, -1) })
}
