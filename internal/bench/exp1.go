package bench

import (
	"fmt"
	"math/rand"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/loose/remote"
)

// Exp1aNumEnrichments reproduces Table 7: the number of enrichments
// performed by the Baseline (complete enrichment), loose and tight designs
// for Q1–Q9. Expected shape: Baseline ≫ Loose ≥ Tight, with equality of the
// two designs on Q1, Q7 and Q9 (single derived predicate or fixed-only
// selection) and strict tight savings on the multi-derived-predicate
// queries.
func Exp1aNumEnrichments(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 7 — number of enrichments (Baseline vs Loose vs Tight)",
		Header: []string{"query", "baseline", "loose", "tight", "tight/loose"},
	}
	for qi, q := range s.Queries() {
		le, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		baseline, err := le.BaselineEnrichments(q)
		if err != nil {
			return nil, err
		}
		lres, err := le.LooseDriver().Execute(q)
		if err != nil {
			return nil, fmt.Errorf("Q%d loose: %w", qi+1, err)
		}
		te, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		tres, err := te.TightDriver().Execute(q)
		if err != nil {
			return nil, fmt.Errorf("Q%d tight: %w", qi+1, err)
		}
		ratio := 1.0
		if lres.Enrichments > 0 {
			ratio = float64(tres.Enrichments) / float64(lres.Enrichments)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Q%d", qi+1),
			fmt.Sprintf("%d", baseline),
			fmt.Sprintf("%d", lres.Enrichments),
			fmt.Sprintf("%d", tres.Enrichments),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: baseline >> loose >= tight; equality on Q1/Q7/Q9, strict savings on Q2-Q6, Q8")
	return t, nil
}

// Exp1bSelectivity reproduces Table 8: the number of enrichments as the Q3
// topic predicate's selectivity varies. Expected shape: the tight design's
// advantage grows as the predicate passes fewer tuples; the loose design is
// flat (it enriches every probe tuple for every attribute regardless).
func Exp1bSelectivity(s Scale) (*Table, error) {
	t := &Table{
		Title:  "Table 8 — enrichments vs predicate selectivity (Q3)",
		Header: []string{"selectivity", "baseline", "loose", "tight", "tight/loose"},
	}
	for _, frac := range []float64{0.01, 0.10, 0.25, 0.50, 0.75} {
		q := s.Q3WithSelectivity(frac)
		le, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		baseline, _ := le.BaselineEnrichments(q)
		lres, err := le.LooseDriver().Execute(q)
		if err != nil {
			return nil, err
		}
		te, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		tres, err := te.TightDriver().Execute(q)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if lres.Enrichments > 0 {
			ratio = float64(tres.Enrichments) / float64(lres.Enrichments)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", baseline),
			fmt.Sprintf("%d", lres.Enrichments),
			fmt.Sprintf("%d", tres.Enrichments),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: loose flat across selectivities; tight/loose ratio shrinks as the predicate gets more selective")
	return t, nil
}

// CumulativePoint is one query of the Figure 5 series.
type CumulativePoint struct {
	Query          int
	Enrichments    int64
	CumulativeCost time.Duration
	EagerCost      time.Duration
}

// Exp1cCumulative reproduces Figure 5: the cumulative execution time of
// repeated Q3 instances with random time windows, against the one-off cost
// of eager (at-ingestion) complete enrichment. Expected shape: the
// query-time curve starts far below the eager line and converges towards it
// as the queries cover the data, never exceeding it.
func Exp1cCumulative(s Scale, queries int) (*Table, []CumulativePoint, error) {
	env, err := NewEnv(s, dataset.SingleFunctionSpecs())
	if err != nil {
		return nil, nil, err
	}
	// Eager cost estimate: per-object cost of each function × tuples.
	var eager time.Duration
	for _, attr := range []string{"sentiment", "topic"} {
		fam := env.Mgr.Family("TweetData", attr)
		for _, fn := range fam.Functions {
			eager += fn.AvgCost() * time.Duration(s.Tweets)
		}
	}

	drv := env.LooseDriver()
	r := rand.New(rand.NewSource(s.Seed + 77))
	window := s.TimeRange / 20 // ~5% selectivity per query instance
	var cumulative time.Duration
	var points []CumulativePoint
	t := &Table{
		Title:  "Figure 5 — cumulative query-time cost vs eager enrichment (repeated Q3)",
		Header: []string{"query#", "enrichments", "cumulative", "eager"},
	}
	for qi := 1; qi <= queries; qi++ {
		lo := r.Int63n(s.TimeRange - window)
		hi := lo + window
		q := fmt.Sprintf("SELECT * FROM TweetData WHERE topic <= %d AND sentiment = 1 AND TweetTime BETWEEN %d AND %d",
			s.TopicDomain/2, lo, hi)
		res, err := drv.Execute(q)
		if err != nil {
			return nil, nil, err
		}
		cumulative += res.Timing.Enrich
		points = append(points, CumulativePoint{
			Query: qi, Enrichments: res.Enrichments, CumulativeCost: cumulative, EagerCost: eager,
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", qi),
			fmt.Sprintf("%d", res.Enrichments),
			dur(cumulative),
			dur(eager),
		})
	}
	// Recalculate the eager estimate from the now-measured costs (AvgCost
	// sharpens once functions have actually run) and refresh the printed
	// column so table and points agree.
	var eagerMeasured time.Duration
	for _, attr := range []string{"sentiment", "topic"} {
		fam := env.Mgr.Family("TweetData", attr)
		for _, fn := range fam.Functions {
			eagerMeasured += fn.AvgCost() * time.Duration(s.Tweets)
		}
	}
	for i := range points {
		points[i].EagerCost = eagerMeasured
		t.Rows[i][3] = dur(eagerMeasured)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("eager cost re-estimated from measured per-object costs: %s", dur(eagerMeasured)),
		"paper shape: cumulative query-time cost stays below eager and converges as queries cover the data")
	return t, points, nil
}

// Exp1dLatency reproduces Table 9: per-template latency of the loose and
// tight designs, averaged over several instances. Expected shape: both ≪
// complete enrichment; tight ≤ loose except Q8 where the rewritten join's
// forced nested loop makes tight slower.
func Exp1dLatency(s Scale, instances int) (*Table, error) {
	t := &Table{
		Title:  "Table 9 — query latency (avg over instances)",
		Header: []string{"query", "loose", "tight", "loose rows", "tight rows"},
	}
	for qi, q := range s.Queries() {
		var lTotal, tTotal time.Duration
		var lRows, tRows int
		for inst := 0; inst < instances; inst++ {
			sc := s
			sc.Seed = s.Seed + int64(inst)
			le, err := NewEnv(sc, dataset.SingleFunctionSpecs())
			if err != nil {
				return nil, err
			}
			lres, err := le.LooseDriver().Execute(q)
			if err != nil {
				return nil, fmt.Errorf("Q%d loose: %w", qi+1, err)
			}
			lTotal += lres.Timing.Total()
			lRows += len(lres.Rows)

			te, err := NewEnv(sc, dataset.SingleFunctionSpecs())
			if err != nil {
				return nil, err
			}
			start := time.Now()
			tres, err := te.TightDriver().Execute(q)
			if err != nil {
				return nil, fmt.Errorf("Q%d tight: %w", qi+1, err)
			}
			tTotal += time.Since(start)
			tRows += len(tres.Rows)
		}
		n := time.Duration(instances)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Q%d", qi+1),
			dur(lTotal / n),
			dur(tTotal / n),
			fmt.Sprintf("%d", lRows/instances),
			fmt.Sprintf("%d", tRows/instances),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: tight <= loose on Q1-Q7/Q9; loose wins Q8 (tight's rewritten join forces a nested loop)")
	return t, nil
}

// Exp1eTimeSplit reproduces Table 11: where the loose design's time goes —
// enrichment server (ES), network, DBMS — against the tight design's
// all-in-DBMS time. The loose runs use a real TCP enrichment server with an
// added per-batch latency emulating the paper's cross-server AWS link.
// Expected shape: loose time dominated by the ES; network > DBMS share.
func Exp1eTimeSplit(s Scale, extraLatency time.Duration) (*Table, error) {
	t := &Table{
		Title:  "Table 11 — time split: loose (DBMS / network / ES) vs tight (DBMS)",
		Header: []string{"query", "loose DBMS", "loose net", "loose ES", "loose total", "tight total"},
	}
	for qi, q := range s.Queries() {
		le, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		srv, addr, err := remote.Serve("127.0.0.1:0", le.Mgr)
		if err != nil {
			return nil, err
		}
		// Production-shaped client: bounded per-call deadline with retries.
		// Any retried attempt's wall-clock lands in the network column, so
		// the split stays truthful if the loopback transport hiccups.
		client, err := remote.DialOptions(addr, remote.Options{CallTimeout: 30 * time.Second})
		if err != nil {
			srv.Close()
			return nil, err
		}
		client.ExtraLatency = extraLatency
		drv := le.LooseDriver()
		drv.Enricher = client
		lres, err := drv.Execute(q)
		client.Close()
		srv.Close()
		if err != nil {
			return nil, fmt.Errorf("Q%d loose: %w", qi+1, err)
		}
		if lres.FailedEnrichments > 0 {
			return nil, fmt.Errorf("Q%d loose: %d enrichments failed: %v",
				qi+1, lres.FailedEnrichments, lres.EnrichErrors)
		}

		te, err := NewEnv(s, dataset.SingleFunctionSpecs())
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := te.TightDriver().Execute(q); err != nil {
			return nil, fmt.Errorf("Q%d tight: %w", qi+1, err)
		}
		tightTotal := time.Since(start)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Q%d", qi+1),
			dur(lres.Timing.Probe + lres.Timing.DBMS),
			dur(lres.Timing.Network),
			dur(lres.Timing.Enrich),
			dur(lres.Timing.Total()),
			dur(tightTotal),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: the enrichment server dominates loose time; network adds a constant data-movement tax tight avoids")
	return t, nil
}
