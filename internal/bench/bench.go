// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5). Each Exp* function builds fresh
// database instances (cold enrichment state), runs the experiment, and
// returns a printable Table whose rows mirror the paper's.
//
// Absolute numbers differ from the paper — the substrate is this module's
// in-memory engine with pure-Go classifiers on synthetic data, not
// PostgreSQL+MADlib on AWS with 11M real tweets — but the comparative shapes
// (who wins, by roughly what factor, where crossovers fall) are the
// reproduction targets; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"
	"enrichdb/internal/enrich"
	"enrichdb/internal/expr"
	"enrichdb/internal/loose"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/stats"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/tight"
)

// Scale sizes the synthetic datasets. Small keeps the full suite in the
// minutes range; Paper pushes towards the paper's relative proportions.
type Scale struct {
	Name        string
	Tweets      int
	Images      int
	TopicDomain int
	TimeRange   int64
	Seed        int64
	// ExtraCost inflates every enrichment function's per-object cost,
	// standing in for the paper's heavyweight models (100ms+/object) at a
	// reduced scale.
	ExtraCost time.Duration
}

// Small is the default benchmarking scale.
func Small() Scale {
	return Scale{Name: "small", Tweets: 2000, Images: 800, TopicDomain: 8, TimeRange: 10000, Seed: 1}
}

// Medium is a larger scale for the standalone benchrunner.
func Medium() Scale {
	return Scale{Name: "medium", Tweets: 10000, Images: 3000, TopicDomain: 20, TimeRange: 10000, Seed: 1}
}

// Env is one freshly generated database with registered function families.
type Env struct {
	Scale Scale
	Data  *dataset.Data
	Mgr   *enrich.Manager
	// Tracer, when set, is handed to the drivers this env builds so their
	// phase spans land in one trace.
	Tracer *telemetry.Tracer
	// Stats is the env's shared runtime-statistics store (DESIGN §14),
	// handed to every driver the env builds so queries feed and consume one
	// adaptive feedback loop. Set NoAdaptive to ablate.
	Stats *stats.Store
	// NoAdaptive disables adaptive optimization on the drivers this env
	// builds (static plans, no stats feedback).
	NoAdaptive bool
}

// Telemetry returns the env's metrics registry (the manager's): every
// component that ran against this env published its counters there.
func (e *Env) Telemetry() *telemetry.Registry { return e.Mgr.Telemetry() }

// OnEnv, when non-nil, observes every Env that NewEnv builds. The
// benchrunner installs it to collect the envs each experiment creates and
// merge their telemetry snapshots into one uniform counter table; it can
// also hand each env a shared Tracer. Set it before running experiments —
// it is read without synchronization.
var OnEnv func(*Env)

// NewEnv generates a dataset and trains/registers the given families. Envs
// built from the same scale and specs are identical, so loose and tight runs
// start from the same cold state.
func NewEnv(s Scale, specs map[[2]string][]dataset.ModelSpec) (*Env, error) {
	d, err := dataset.Generate(dataset.Config{
		Seed: s.Seed, Tweets: s.Tweets, Images: s.Images,
		TopicDomain: s.TopicDomain, TimeRange: s.TimeRange,
	})
	if err != nil {
		return nil, err
	}
	if s.ExtraCost > 0 {
		specs = withExtraCost(specs, s.ExtraCost)
	}
	mgr := enrich.NewManager()
	if err := d.RegisterFamilies(mgr, specs); err != nil {
		return nil, err
	}
	env := &Env{Scale: s, Data: d, Mgr: mgr, Stats: stats.NewStore()}
	if OnEnv != nil {
		OnEnv(env)
	}
	return env, nil
}

func withExtraCost(specs map[[2]string][]dataset.ModelSpec, cost time.Duration) map[[2]string][]dataset.ModelSpec {
	out := make(map[[2]string][]dataset.ModelSpec, len(specs))
	for k, ms := range specs {
		cp := make([]dataset.ModelSpec, len(ms))
		copy(cp, ms)
		for i := range cp {
			cp[i].ExtraCost = cost
		}
		out[k] = cp
	}
	return out
}

// LooseDriver builds a loose driver over the env (in-process server).
func (e *Env) LooseDriver() *loose.Driver {
	d := loose.NewDriver(e.Data.DB, e.Mgr)
	d.Tracer = e.Tracer
	d.Stats = e.Stats
	d.NoAdaptive = e.NoAdaptive
	return d
}

// TightDriver builds a tight driver over the env.
func (e *Env) TightDriver() *tight.Driver {
	d := tight.NewDriver(e.Data.DB, e.Mgr)
	d.Tracer = e.Tracer
	d.Stats = e.Stats
	d.NoAdaptive = e.NoAdaptive
	return d
}

// Queries instantiates the paper's nine query templates (Table 6) against
// the generated schemas. Parameters are chosen so each query is selective
// but non-empty at the configured scale.
func (s Scale) Queries() []string {
	t1, t2 := s.TimeRange/4, s.TimeRange/4+s.TimeRange/10 // a 10% time window
	k := int64(s.TopicDomain / 4)
	return []string{
		// Q1: single derived predicate, selection.
		"SELECT * FROM MultiPie WHERE gender = 1 AND CameraID < 5",
		// Q2: two derived predicates, selection.
		"SELECT * FROM MultiPie WHERE gender = 1 AND expression = 2 AND CameraID < 5",
		// Q3: two derived predicates over a time window.
		fmt.Sprintf("SELECT * FROM TweetData WHERE topic <= %d AND sentiment = 1 AND TweetTime BETWEEN %d AND %d", k, t1, t2),
		// Q4: self-join on two derived attributes (both sides time-bounded
		// to keep the probe sets finite, matching the paper's enrichment
		// counts).
		fmt.Sprintf("SELECT * FROM TweetData T1, TweetData T2 WHERE T1.sentiment = T2.sentiment AND T1.topic = T2.topic AND T1.TweetTime BETWEEN %d AND %d AND T2.TweetTime BETWEEN %d AND %d", t1, t2, t1, t2),
		// Q5: self-join on one derived attribute.
		"SELECT * FROM MultiPie M1, MultiPie M2 WHERE M1.gender = M2.gender AND M1.CameraID < 3 AND M2.CameraID < 3",
		// Q6: self-join on two derived attributes.
		"SELECT * FROM MultiPie M1, MultiPie M2 WHERE M1.gender = M2.gender AND M1.expression = M2.expression AND M1.CameraID < 3 AND M2.CameraID < 3",
		// Q7: join with a lookup table, single derived predicate.
		fmt.Sprintf("SELECT * FROM TweetData T1, State S WHERE T1.location = S.city AND S.state = 'California' AND T1.sentiment = 1 AND T1.TweetTime BETWEEN %d AND %d", t1, t2),
		// Q8: three-way join mixing a fixed equi-join (Tweet text) with a
		// derived join (topic) — the query whose rewritten form defeats the
		// tight design's optimizer.
		fmt.Sprintf("SELECT * FROM TweetData T1, TweetData T2, State S WHERE T1.Tweet = T2.Tweet AND T1.topic = T2.topic AND T1.location = S.city AND S.state = 'California' AND T1.TweetTime BETWEEN %d AND %d", t1, t2),
		// Q9: aggregation with a derived group-by.
		fmt.Sprintf("SELECT topic, count(*) FROM TweetData WHERE TweetTime BETWEEN %d AND %d GROUP BY topic", t1, t2),
	}
}

// Q3WithSelectivity instantiates Q3 with a topic predicate passing roughly
// the given fraction of the domain.
func (s Scale) Q3WithSelectivity(frac float64) string {
	k := int64(float64(s.TopicDomain)*frac) - 1
	if k < 0 {
		k = 0
	}
	t1, t2 := s.TimeRange/4, s.TimeRange/4+s.TimeRange/10
	return fmt.Sprintf("SELECT * FROM TweetData WHERE topic <= %d AND sentiment = 1 AND TweetTime BETWEEN %d AND %d", k, t1, t2)
}

// BaselineEnrichments is the "complete enrichment before querying" cost: one
// execution per (tuple, derived attribute, family function) over every
// relation the query touches.
func (e *Env) BaselineEnrichments(query string) (int64, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return 0, err
	}
	a, err := engine.Analyze(stmt, e.Data.DB.Catalog())
	if err != nil {
		return 0, err
	}
	seen := make(map[string]bool)
	var total int64
	for _, tm := range a.Tables {
		if seen[tm.Relation] {
			continue
		}
		seen[tm.Relation] = true
		tbl := e.Data.DB.MustTable(tm.Relation)
		for _, attr := range tm.Schema.DerivedCols() {
			fam := e.Mgr.Family(tm.Relation, attr)
			if fam == nil {
				continue
			}
			total += int64(tbl.Len()) * int64(len(fam.Functions))
		}
	}
	return total, nil
}

// ExecutePlain runs a query on the env without enrichment.
func (e *Env) ExecutePlain(query string) ([]*expr.Row, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	a, err := engine.Analyze(stmt, e.Data.DB.Catalog())
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, e.Data.DB)
	if err != nil {
		return nil, err
	}
	return plan.Execute(engine.NewExecCtx())
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, r := range t.Rows {
		printRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func dur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
