package bench

import (
	"fmt"

	"enrichdb/internal/dataset"
	"enrichdb/internal/enrich"
	"enrichdb/internal/ml"
	"enrichdb/internal/types"
)

// DeterminizerComparison quantifies the determinization function choice the
// paper treats as a black box (§3.1): with the full Table 5 family executed
// on every tuple, how accurate is the fused value under averaging, majority
// vote, and quality-weighted vote, against each function alone. Expected
// shape: ensembles meet or beat the average single function; weighting by
// quality helps when family members differ widely.
func DeterminizerComparison(s Scale) (*Table, error) {
	env, err := NewEnv(s, dataset.PaperFamilySpecs())
	if err != nil {
		return nil, err
	}
	const rel, attr = "TweetData", "sentiment"
	fam := env.Mgr.Family(rel, attr)
	tbl := env.Data.DB.MustTable(rel)
	schema := tbl.Schema()
	fi := schema.ColIndex("feature")

	// Execute the whole family on every tuple once.
	tids := tbl.IDs()
	outputs := make(map[int64][][]float64, len(tids))
	for _, tid := range tids {
		x := tbl.Get(tid).Vals[fi].Vector()
		outs := make([][]float64, len(fam.Functions))
		for _, fn := range fam.Functions {
			outs[fn.ID] = fn.Model.PredictProba(x)
		}
		outputs[tid] = outs
	}

	accuracyOf := func(det enrich.Determinizer) float64 {
		correct := 0
		for _, tid := range tids {
			truth, _ := env.Data.Truth.Label(rel, attr, tid)
			v := det.Determine(outputs[tid], fam.Domain)
			if !v.IsNull() && v.Int() == int64(truth) {
				correct++
			}
		}
		return float64(correct) / float64(len(tids))
	}

	weights := make([]float64, len(fam.Functions))
	for i, fn := range fam.Functions {
		weights[i] = fn.Quality
	}

	t := &Table{
		Title:  "Extension — determinization function comparison (TweetData.sentiment, full family)",
		Header: []string{"determinizer", "accuracy"},
	}
	t.Rows = append(t.Rows,
		[]string{"AvgProb", fmt.Sprintf("%.3f", accuracyOf(enrich.AvgProb{}))},
		[]string{"MajorityVote", fmt.Sprintf("%.3f", accuracyOf(enrich.MajorityVote{}))},
		[]string{"WeightedVote(quality)", fmt.Sprintf("%.3f", accuracyOf(enrich.WeightedVote{Weights: weights}))},
	)
	for _, fn := range fam.Functions {
		id := fn.ID
		solo := soloDet{id: id}
		t.Rows = append(t.Rows, []string{
			"single: " + fn.Name, fmt.Sprintf("%.3f", accuracyOf(solo)),
		})
	}
	t.Notes = append(t.Notes,
		"the paper treats DET() as a black box; ensembles should meet or beat the average single function")
	return t, nil
}

// soloDet determinizes from one function's output only.
type soloDet struct{ id int }

// Determine implements enrich.Determinizer.
func (s soloDet) Determine(outputs [][]float64, domain int) types.Value {
	if s.id >= len(outputs) || outputs[s.id] == nil {
		return types.Null
	}
	return types.NewInt(int64(ml.Argmax(outputs[s.id])))
}
