package bench

// Adaptive-optimization benchmarks backing BENCH_adaptive.json (`make
// bench-adaptive`): the /static and /adaptive sub-benchmarks run the SAME
// workload with adaptivity off and on, so the recorded ns/op pair is the
// headline comparison. BenchmarkAdaptiveFilter measures one full filter pass
// over the pessimally-ordered skewed table; BenchmarkAdaptiveTTQ measures
// time-to-quality of the skewed-cost progressive run (ns/op = wall time
// until the answer first reaches the F1 target).

import (
	"testing"

	"enrichdb/internal/engine"
	"enrichdb/internal/progressive"
	"enrichdb/internal/stats"
)

const adaptiveFilterRows = 400_000

func benchmarkSkewFilter(b *testing.B, adaptive bool) {
	tbl := skewFilterTable(b, adaptiveFilterRows)
	pred := skewFilterPred(b, engine.NewScan(tbl, "W").Schema(), adaptiveFilterRows)
	var st *stats.Store
	if adaptive {
		st = stats.NewStore()
	}
	// One untimed warm-up pass: warms the table for both variants and gives
	// the adaptive run a scan of observations (its steady state).
	if _, err := runSkewFilter(tbl, pred, st); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := runSkewFilter(tbl, pred, st)
		if err != nil {
			b.Fatal(err)
		}
		if n != adaptiveFilterRows/100 {
			b.Fatalf("filter kept %d rows, want %d", n, adaptiveFilterRows/100)
		}
	}
}

func BenchmarkAdaptiveFilter(b *testing.B) {
	b.Run("static", func(b *testing.B) { benchmarkSkewFilter(b, false) })
	b.Run("adaptive", func(b *testing.B) { benchmarkSkewFilter(b, true) })
}

func benchmarkTTQ(b *testing.B, strategy progressive.Strategy) {
	s := Small()
	query := s.AdaptiveQuery()
	var totalNs int64
	for i := 0; i < b.N; i++ {
		wall, _, err := timeToQuality(s, strategy, query, AdaptiveQualityTarget)
		if err != nil {
			b.Fatal(err)
		}
		totalNs += wall.Nanoseconds()
	}
	// Override the default ns/op (which would include env construction —
	// dataset generation and model training) with the measured time from
	// query start to the quality target.
	b.ReportMetric(float64(totalNs)/float64(b.N), "ns/op")
}

func BenchmarkAdaptiveTTQ(b *testing.B) {
	b.Run("SBRO", func(b *testing.B) { benchmarkTTQ(b, progressive.SBRO) })
	b.Run("SBFO", func(b *testing.B) { benchmarkTTQ(b, progressive.SBFO) })
	b.Run("adaptive", func(b *testing.B) { benchmarkTTQ(b, progressive.Adaptive) })
}

// TestExpAdaptiveShape smoke-runs the benchrunner experiment at a reduced
// scale and checks the headline shape: the adaptive filter beats the
// pessimal static order, and the Adaptive strategy's time-to-quality row is
// present. Guard test so `make check` exercises the adaptive bench path.
func TestExpAdaptiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive experiment is seconds-long; skipped under -short")
	}
	s := Small()
	s.Tweets = 600
	tbl, err := ExpAdaptive(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("expected 5 rows (2 filter + 3 strategies), got %d:\n%s", len(tbl.Rows), tbl)
	}
}
