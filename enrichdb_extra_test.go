package enrichdb

import (
	"testing"
	"time"
)

func TestInsertEnrichedEager(t *testing.T) {
	db, dataX, truth := buildReviewDB(t)
	// Insert a fresh tuple eagerly: its rating must be non-NULL immediately.
	id, err := db.InsertEnriched("Reviews", 0,
		Int(9999), Vector(dataX[0]), String("north"), Int(1), Null)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT rating FROM Reviews WHERE id = 9999")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.At(0)[0].IsNull() {
		t.Fatalf("eager insert must enrich immediately: %v", rows.At(0))
	}
	// Two family functions executed.
	if got := db.Stats().Enrichments; got != 2 {
		t.Errorf("enrichments = %d want 2", got)
	}
	// A later query-time run must not re-enrich it.
	before := db.Stats().Enrichments
	if _, err := db.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND id = 9999"); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Enrichments != before {
		t.Error("eagerly enriched tuple must not be re-enriched at query time")
	}
	_ = id
	_ = truth
}

func TestInsertEnrichedErrors(t *testing.T) {
	db := Open()
	if _, err := db.InsertEnriched("Missing", 0); err == nil {
		t.Error("unknown relation must fail")
	}
	// A relation with a derived attribute but no registered family: eager
	// insert stores the tuple and leaves the attribute NULL.
	if err := db.CreateRelation("R", []Column{
		{Name: "f", Kind: KindVector},
		{Name: "d", Kind: KindInt, Derived: true, FeatureCol: "f", Domain: 2},
	}); err != nil {
		t.Fatal(err)
	}
	id, err := db.InsertEnriched("R", 0, Vector([]float64{1}), Null)
	if err != nil {
		t.Fatalf("eager insert without family: %v", err)
	}
	rows, _ := db.Query("SELECT d FROM R WHERE d IS NULL")
	if rows.Len() != 1 {
		t.Errorf("tuple %d should have NULL d", id)
	}
}

func TestOnDeltaFetchesIncrementalAnswers(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	var inserted, deleted int
	seen := make(map[int64]bool)
	res, err := db.QueryProgressive("SELECT * FROM Reviews WHERE rating = 1", ProgressiveOptions{
		Design:      LooseDesign,
		Strategy:    FunctionOrdered,
		EpochBudget: 2 * time.Millisecond,
		OnDelta: func(ins, del *Rows) {
			inserted += ins.Len()
			deleted += del.Len()
			for i := 0; i < ins.Len(); i++ {
				seen[ins.TIDs(i)[0]] = true
			}
			for i := 0; i < del.Len(); i++ {
				delete(seen, del.TIDs(i)[0])
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inserted == 0 {
		t.Fatal("no delta answers delivered")
	}
	// Accumulating the deltas must reconstruct the final answer exactly.
	if len(seen) != res.Len() {
		t.Errorf("delta accumulation (%d rows) != final answer (%d rows)", len(seen), res.Len())
	}
	for i := 0; i < res.Len(); i++ {
		if !seen[res.TIDs(i)[0]] {
			t.Errorf("final row %d missing from accumulated deltas", res.TIDs(i)[0])
		}
	}
}

func TestDeltaSinceArbitraryEpoch(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	res, err := db.QueryProgressive("SELECT * FROM Reviews WHERE rating = 1", ProgressiveOptions{
		Design:      LooseDesign,
		Strategy:    FunctionOrdered,
		EpochBudget: 500 * time.Microsecond,
		MaxEpochs:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) < 3 {
		t.Skipf("need several epochs, got %d", len(res.Epochs))
	}
	// Since setup: the net delta is the full final answer.
	ins, del := res.DeltaSince(0)
	if ins.Len()-del.Len() != res.Len() {
		t.Errorf("DeltaSince(0): +%d -%d vs final %d", ins.Len(), del.Len(), res.Len())
	}
	// Since a mid-run epoch: final = answer@k + delta-since-k. Reconstruct
	// answer@k from the per-epoch counters and compare sizes.
	k := len(res.Epochs) / 2
	atK := 0
	for _, e := range res.Epochs[:k] {
		atK += e.Inserted - e.Deleted
	}
	insK, delK := res.DeltaSince(k)
	if atK+insK.Len()-delK.Len() != res.Len() {
		t.Errorf("DeltaSince(%d): answer@k %d + %d - %d != final %d",
			k, atK, insK.Len(), delK.Len(), res.Len())
	}
	// Since the last epoch: nothing left.
	insEnd, delEnd := res.DeltaSince(len(res.Epochs))
	if insEnd.Len() != 0 || delEnd.Len() != 0 {
		t.Errorf("DeltaSince(end): +%d -%d", insEnd.Len(), delEnd.Len())
	}
}

func TestConcurrentQueriesShareEnrichment(t *testing.T) {
	// The paper's §7 outlook: enrichment performed by one query benefits
	// others. Two overlapping queries — the second must only pay for the
	// tuples the first did not cover.
	db, _, _ := buildReviewDB(t)
	res1, err := db.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND day < 20")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db.QueryTight("SELECT * FROM Reviews WHERE rating = 2 AND day < 30")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Enrichments == 0 || res2.Enrichments == 0 {
		t.Fatal("both queries should enrich something")
	}
	// Query 2 covers day<30 ⊃ day<20: it must have paid only for the
	// uncovered day range (roughly a third of what a cold run would cost).
	if res2.Enrichments >= res1.Enrichments {
		t.Errorf("overlapping query did not reuse enrichment: q1=%d q2=%d",
			res1.Enrichments, res2.Enrichments)
	}
}

func TestOrderByLimitPublic(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	rows, err := db.Query("SELECT id, day FROM Reviews ORDER BY day DESC, id ASC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 5 {
		t.Fatalf("rows: %d", rows.Len())
	}
	for i := 1; i < rows.Len(); i++ {
		if rows.At(i - 1)[1].Int() < rows.At(i)[1].Int() {
			t.Fatal("not descending by day")
		}
	}
	// The designs support ORDER BY/LIMIT too.
	res, err := db.QueryTight("SELECT id FROM Reviews WHERE rating = 1 ORDER BY id LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() > 3 {
		t.Errorf("limit ignored: %d", res.Len())
	}
	// Progressive execution cannot maintain LIMIT views incrementally.
	if _, err := db.QueryProgressive("SELECT id FROM Reviews WHERE rating = 1 LIMIT 3",
		ProgressiveOptions{EpochBudget: time.Millisecond}); err == nil {
		t.Error("progressive LIMIT must be rejected with a clear error")
	}
}

func TestProgressiveWithoutOnDeltaSkipsCollection(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	res, err := db.QueryProgressive("SELECT * FROM Reviews WHERE rating = 0", ProgressiveOptions{
		EpochBudget: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("no results")
	}
}
