// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5), one Benchmark per artifact, plus micro-benchmarks of the substrate
// hot paths. Run:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full harness once per iteration and
// reports the headline quantities as custom metrics, so a -bench run leaves
// a paper-shaped record; cmd/benchrunner prints the full tables.
package enrichdb

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"enrichdb/internal/bench"
	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"

	"enrichdb/internal/ivm"
	"enrichdb/internal/loose"
	"enrichdb/internal/metrics"
	"enrichdb/internal/ml"
	"enrichdb/internal/progressive"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/types"
)

func benchScale() bench.Scale {
	return bench.Scale{Name: "bench", Tweets: 1000, Images: 500, TopicDomain: 6, TimeRange: 10000, Seed: 1}
}

// BenchmarkExp1NumEnrichments regenerates Table 7.
func BenchmarkExp1NumEnrichments(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp1aNumEnrichments(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportRatio(b, last, 1, "Q2_tight_over_loose") // row Q2, ratio column
	b.Log("\n" + last.String())
}

// BenchmarkExp1Selectivity regenerates Table 8.
func BenchmarkExp1Selectivity(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp1bSelectivity(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	reportRatio(b, last, 0, "sel1pct_tight_over_loose")
	b.Log("\n" + last.String())
}

// BenchmarkExp1Cumulative regenerates Figure 5.
func BenchmarkExp1Cumulative(b *testing.B) {
	var points []bench.CumulativePoint
	for i := 0; i < b.N; i++ {
		_, p, err := bench.Exp1cCumulative(benchScale(), 12)
		if err != nil {
			b.Fatal(err)
		}
		points = p
	}
	final := points[len(points)-1]
	if final.EagerCost > 0 {
		b.ReportMetric(float64(final.CumulativeCost)/float64(final.EagerCost), "cumulative/eager")
	}
}

// BenchmarkExp1Latency regenerates Table 9.
func BenchmarkExp1Latency(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp1dLatency(benchScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkExp1TimeSplit regenerates Table 11.
func BenchmarkExp1TimeSplit(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp1eTimeSplit(benchScale(), time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkExp1Workers regenerates Exp 1f: epoch wall-clock vs the Workers
// knob for both designs. The reported metric is the tight design's speedup
// at the highest worker count over its Workers:1 baseline — the headline the
// parallel epoch executor must deliver (>1 means wall-clock improved).
func BenchmarkExp1Workers(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp1fWorkers(benchScale(), []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Last row = tight design at the highest worker count; its final column
	// is the speedup over tight Workers:1.
	tightBest := last.Rows[len(last.Rows)-1]
	var speedup float64
	if _, err := fmt.Sscanf(tightBest[len(tightBest)-1], "%fx", &speedup); err == nil {
		b.ReportMetric(speedup, "tight_speedup_w8")
	}
	b.Log("\n" + last.String())
}

// BenchmarkExp2Progressiveness regenerates Figures 6 and 7.
func BenchmarkExp2Progressiveness(b *testing.B) {
	var fig7, fig6 *bench.Table
	for i := 0; i < b.N; i++ {
		f7, f6, err := bench.Exp2Progressiveness(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		fig7, fig6 = f7, f6
	}
	b.Log("\n" + fig7.String())
	b.Log("\n" + fig6.String())
}

// BenchmarkExp3PlanStrategies regenerates Figure 8.
func BenchmarkExp3PlanStrategies(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp3PlanStrategies(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkExp4Overhead regenerates the time-overhead experiment.
func BenchmarkExp4Overhead(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.Exp4Overhead(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkExp5Storage regenerates the storage-overhead experiment and
// Table 10.
func BenchmarkExp5Storage(b *testing.B) {
	var sizes, cutoff *bench.Table
	for i := 0; i < b.N; i++ {
		s, c, err := bench.Exp5Storage(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		sizes, cutoff = s, c
	}
	b.Log("\n" + sizes.String())
	b.Log("\n" + cutoff.String())
}

// BenchmarkAblationProbe quantifies the probe minimality strategies.
func BenchmarkAblationProbe(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationProbe(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkAblationOptimizer quantifies the optimizer behaviours the tight
// design depends on.
func BenchmarkAblationOptimizer(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationOptimizer(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkAblationBatching compares batched, parallel and per-row
// enrichment execution.
func BenchmarkAblationBatching(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationBatching(benchScale(), 100*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkDeterminizerComparison quantifies the determinization choice the
// paper treats as a black box.
func BenchmarkDeterminizerComparison(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.DeterminizerComparison(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

// BenchmarkIngestionRate measures lazy vs eager ingestion throughput (the
// paper's introduction claim).
func BenchmarkIngestionRate(b *testing.B) {
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := bench.IngestionRate(500, []time.Duration{100 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.String())
}

func reportRatio(b *testing.B, t *bench.Table, row int, name string) {
	b.Helper()
	if row >= len(t.Rows) {
		return
	}
	cells := t.Rows[row]
	v, err := strconv.ParseFloat(cells[len(cells)-1], 64)
	if err == nil {
		b.ReportMetric(v, name)
	}
}

// ---- substrate micro-benchmarks ----

func benchEnv(b *testing.B) *bench.Env {
	b.Helper()
	env, err := bench.NewEnv(benchScale(), dataset.SingleFunctionSpecs())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkEngineSelection measures a full selection scan+filter.
func BenchmarkEngineSelection(b *testing.B) {
	env := benchEnv(b)
	q := "SELECT * FROM TweetData WHERE TweetTime BETWEEN 1000 AND 3000"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ExecutePlain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineHashJoin measures the hash-join path.
func BenchmarkEngineHashJoin(b *testing.B) {
	env := benchEnv(b)
	q := "SELECT * FROM TweetData T1, State S WHERE T1.location = S.city"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ExecutePlain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineAggregation measures grouped aggregation.
func BenchmarkEngineAggregation(b *testing.B) {
	env := benchEnv(b)
	q := "SELECT location, count(*), avg(TweetTime) FROM TweetData GROUP BY location"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ExecutePlain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIVMApply measures maintaining a selection view under one update.
func BenchmarkIVMApply(b *testing.B) {
	env := benchEnv(b)
	stmt := sqlparser.MustParse("SELECT * FROM TweetData WHERE sentiment = 1")
	a, err := engine.Analyze(stmt, env.Data.DB.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	view, err := ivm.New(a, env.Data.DB, nil)
	if err != nil {
		b.Fatal(err)
	}
	tbl := env.Data.DB.MustTable("TweetData")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tid := int64(i%1000 + 1)
		old := tbl.Get(tid).Clone()
		tbl.Update(tid, "sentiment", types.NewInt(int64(i%3)))
		if _, err := view.Apply(nil, []ivm.TupleDelta{{Relation: "TweetData", Old: old, New: tbl.Get(tid)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbeGeneration measures probe-query generation for a join query.
func BenchmarkProbeGeneration(b *testing.B) {
	env := benchEnv(b)
	drv := env.LooseDriver()
	_ = drv
	q := benchScale().Queries()[6] // Q7
	stmt := sqlparser.MustParse(q)
	a, err := engine.Analyze(stmt, env.Data.DB.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probeGen(a, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassifierInference compares per-object costs across the zoo —
// the cost/quality spread the progressive planner exploits.
func BenchmarkClassifierInference(b *testing.B) {
	X, y := blobsFor(b, 600, 8, 3)
	models := []ml.Classifier{
		ml.NewGNB(), ml.NewKNN(5), ml.NewDecisionTree(8),
		ml.NewRandomForest(10, 8, 1), ml.NewMLP(16),
	}
	for _, m := range models {
		if err := m.Fit(X, y, 3); err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.PredictProba(X[i%len(X)])
			}
		})
	}
}

// BenchmarkProgressiveEpoch measures one full progressive epoch (plan +
// enrich + IVM maintenance).
func BenchmarkProgressiveEpoch(b *testing.B) {
	env := benchEnv(b)
	quality := func([]float64) float64 { return 0 }
	_ = quality
	res, err := progressive.Run(progressive.Config{
		Design: progressive.Loose,
		Query:  benchScale().Queries()[2],
		DB:     env.Data.DB, Mgr: env.Mgr,
		EpochBudget: time.Millisecond, MaxEpochs: b.N, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Epochs) > 0 {
		var wall time.Duration
		for _, ep := range res.Epochs {
			wall += ep.Wall
		}
		b.ReportMetric(float64(wall.Nanoseconds())/float64(len(res.Epochs)), "ns/epoch")
	}
	_ = metrics.Normalize
}

func blobsFor(b *testing.B, n, dim, k int) ([][]float64, []int) {
	b.Helper()
	env, err := bench.NewEnv(bench.Scale{Tweets: 10, Images: 10, TopicDomain: k, TimeRange: 100, Seed: 9}, dataset.SingleFunctionSpecs())
	if err != nil {
		b.Fatal(err)
	}
	X, y, _, err := env.Data.TrainingData("TweetData", "topic")
	if err != nil {
		b.Fatal(err)
	}
	if len(X) > n {
		X, y = X[:n], y[:n]
	}
	return X, y
}

func probeGen(a *engine.Analysis, env *bench.Env) (int, error) {
	probes, err := loose.GenerateProbes(a, env.Data.DB, env.Mgr, nil)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range probes {
		n += len(p.TIDs)
	}
	return n, nil
}
