package enrichdb

import (
	"fmt"
	"time"

	"enrichdb/internal/expr"
	"enrichdb/internal/metrics"
	"enrichdb/internal/progressive"
	"enrichdb/internal/telemetry"
)

// Design selects the architecture for a progressive run.
type Design int

// The two architectures of the paper.
const (
	LooseDesign Design = iota
	TightDesign
)

// Strategy is a PlanTable selection strategy (§3.3.2).
type Strategy int

// The paper's three sampling-based strategies. FunctionOrdered — the
// paper's SB(FO) — performs best and is the default.
const (
	ObjectOrdered   Strategy = iota // SB(OO)
	RandomOrdered                   // SB(RO)
	FunctionOrdered                 // SB(FO)
	// BenefitOrdered extends the paper's strategies: tuples are ranked by
	// the entropy of their current determinization, so the epoch budget
	// goes where another function execution is most likely to change the
	// answer.
	BenefitOrdered
	// AdaptiveOrdered closes the loop from observed execution back to
	// planning (DESIGN §14): tuples are ranked by entropy × observed
	// answer-impact / observed per-function cost, and each attribute
	// advances by the function with the best measured impact-per-cost. The
	// ranking re-evaluates every epoch from the database's runtime-statistics
	// store, so the plan adapts mid-query as costs and impacts drift.
	AdaptiveOrdered
)

// ProgressiveOptions parameterizes QueryProgressive. The zero value uses
// the documented defaults.
type ProgressiveOptions struct {
	Design   Design
	Strategy Strategy
	// EpochBudget caps each epoch's estimated enrichment cost (default
	// 25ms). The plan-validity rule of §3.3.2: a plan's cost must fit the
	// epoch duration.
	EpochBudget time.Duration
	// MaxEpochs bounds the run (default 200).
	MaxEpochs int
	Seed      int64
	// Workers sets the run's parallel enrichment/scan width (0 or 1
	// sequential; the answer is byte-identical at any width).
	Workers int
	// Quality, when set, scores the current answer after every epoch (for
	// example against ground truth); the series feeds ProgressiveScore.
	Quality func(*Rows) float64
	// OnEpoch, when set, is called after every epoch, while the run is
	// still in progress, with that epoch's report — delta sizes,
	// enrichments executed/skipped/coalesced, and the running quality.
	OnEpoch func(Epoch)
	// OnDelta, when set, is called after every epoch with the answer rows
	// that appeared and disappeared — the paper's §3.3.4 delta fetching:
	// consume refinements without re-reading the whole answer.
	OnDelta func(inserted, deleted *Rows)
	// Cancel, when non-nil, stops the run at the next epoch boundary once
	// the channel is closed (wire it to a context's Done channel). The run
	// returns the answer refined so far — cancellation is not an error, a
	// canceled progressive query is just a less-refined one.
	Cancel <-chan struct{}
	// Tracer, when non-nil, replaces the database's tracer for this run —
	// the serving tier derives one per sampled query so the run's epoch
	// spans carry the query's trace ID.
	Tracer *telemetry.Tracer
	// Profile, when set, synthesizes the run's phase-level EXPLAIN ANALYZE
	// tree (setup/plan/enrich/UDF/refresh) on ProgressiveResult.Profile.
	Profile bool
	// NoAdaptive disables adaptive optimization for this run regardless of
	// the database's runtime-statistics store: static engine plans, no stats
	// feedback, and AdaptiveOrdered degrades to static cost estimates.
	// Ablation knob (DESIGN §14).
	NoAdaptive bool
}

// Epoch is one epoch's telemetry.
type Epoch struct {
	N           int
	Planned     int
	Enrichments int64
	// Skipped counts planned executions answered from existing state
	// instead of running the function; Coalesced (tight design) counts
	// read_udf calls that shared another call's invocation payment.
	Skipped   int64
	Coalesced int64
	Quality   float64
	Inserted  int
	Deleted   int
	Wall      time.Duration
	// PlanTime, EnrichTime and DeltaTime break the epoch's wall into its
	// dominant phases: PlanTable sampling, function execution, and IVM delta
	// apply. The serving tier streams them as per-epoch profile deltas.
	PlanTime   time.Duration
	EnrichTime time.Duration
	DeltaTime  time.Duration
	// EnrichErr is set when the epoch's enrichment batch was lost in
	// transport; the epoch enriched nothing and its plan was re-queued.
	EnrichErr string
}

// ProgressiveResult is the outcome of a progressive run.
type ProgressiveResult struct {
	*Rows
	Epochs           []Epoch
	Quality          []float64 // per epoch, starting at e₀
	TotalEnrichments int64
	// FailedEpochs counts epochs that enriched nothing because their whole
	// batch was lost in transport (degraded, per DESIGN §6).
	FailedEpochs int
	// Overhead is Exp 4's non-enrichment cost breakdown.
	Overhead ProgressiveOverhead
	// Profile is the phase-level EXPLAIN ANALYZE tree when the run was
	// started with ProgressiveOptions.Profile; nil otherwise.
	Profile *QueryProfile

	schema   *expr.RowSchema
	inserted [][]*expr.Row // per epoch
	deleted  [][]*expr.Row
}

// DeltaSince returns the net answer change between the end of epoch k and
// the end of the run: rows that appeared and rows that disappeared. Epoch 0
// means "since setup", so DeltaSince(0) nets to the full final answer. This
// generalizes the paper's last-epoch delta fetching (§3.3.4 lists
// arbitrary-epoch cursors as future work).
func (r *ProgressiveResult) DeltaSince(epoch int) (inserted, deleted *Rows) {
	type acc struct {
		row   *expr.Row
		count int
	}
	net := make(map[string]*acc)
	key := func(row *expr.Row) string {
		s := ""
		for _, v := range row.Vals {
			s += v.Key() + "|"
		}
		for _, tid := range row.TIDs {
			s += fmt.Sprintf("#%d", tid)
		}
		return s
	}
	for e := epoch; e < len(r.inserted); e++ {
		for _, row := range r.inserted[e] {
			k := key(row)
			if net[k] == nil {
				net[k] = &acc{row: row}
			}
			net[k].count++
		}
		for _, row := range r.deleted[e] {
			k := key(row)
			if net[k] == nil {
				net[k] = &acc{row: row}
			}
			net[k].count--
		}
	}
	var ins, del []*expr.Row
	for _, a := range net {
		for n := a.count; n > 0; n-- {
			ins = append(ins, a.row)
		}
		for n := a.count; n < 0; n++ {
			del = append(del, a.row)
		}
	}
	if r.schema == nil {
		return &Rows{}, &Rows{}
	}
	return wrapRows(r.schema, ins), wrapRows(r.schema, del)
}

// ProgressiveOverhead breaks out the non-enrichment costs of a run.
type ProgressiveOverhead struct {
	Setup  time.Duration
	Plan   time.Duration
	Delta  time.Duration
	State  time.Duration
	UDF    time.Duration
	Enrich time.Duration
}

// Score computes the progressive score PS (Equation 1) of the run's quality
// series with the paper's default slope of 0.05.
func (r *ProgressiveResult) Score() float64 {
	return metrics.ProgressiveScore(r.Quality, 0.05)
}

// QueryProgressive executes a query progressively (§3): per epoch, a sample
// of (tuple, attribute, function) triplets is enriched within the epoch
// budget and the answer is refined through incremental view maintenance.
// Results improve monotonically in enrichment coverage; stop reading when
// satisfied.
func (db *DB) QueryProgressive(query string, opts ProgressiveOptions) (*ProgressiveResult, error) {
	tracer := db.tracer
	if opts.Tracer != nil {
		tracer = opts.Tracer
	}
	cfg := progressive.Config{
		Design:         progressive.Design(opts.Design),
		Query:          query,
		DB:             db.store,
		Mgr:            db.mgr,
		Enricher:       db.enricher,
		Strategy:       progressive.Strategy(opts.Strategy),
		EpochBudget:    opts.EpochBudget,
		MaxEpochs:      opts.MaxEpochs,
		Seed:           opts.Seed,
		Workers:        opts.Workers,
		InvokeOverhead: db.TightInvokeOverhead,
		CollectDeltas:  true, // backs OnDelta and DeltaSince
		Tracer:         tracer,
		Cancel:         opts.Cancel,
		Stats:          db.runtimeStats,
		NoAdaptive:     db.NoAdaptive || opts.NoAdaptive,
	}
	if opts.OnEpoch != nil {
		cfg.OnEpoch = func(ep progressive.EpochReport) { opts.OnEpoch(wrapEpoch(ep)) }
	}
	a, err := db.analyzeSQL(query) // validate early and get the schema
	if err != nil {
		return nil, err
	}
	_ = a
	if opts.Quality != nil {
		cfg.Quality = func(rows []*expr.Row) float64 {
			if len(rows) == 0 {
				return opts.Quality(&Rows{})
			}
			return opts.Quality(wrapRows(rows[0].Schema, rows))
		}
	}
	start := time.Now()
	res, err := progressive.Run(cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	out := &ProgressiveResult{
		Quality:          res.Quality,
		TotalEnrichments: res.TotalEnrichments,
		FailedEpochs:     res.FailedEpochs,
		Overhead: ProgressiveOverhead{
			Setup:  res.Overhead.Setup,
			Plan:   res.Overhead.Plan,
			Delta:  res.Overhead.Delta,
			State:  res.Overhead.State,
			UDF:    res.Overhead.UDF,
			Enrich: res.Overhead.Enrich,
		},
	}
	for _, ep := range res.Epochs {
		out.inserted = append(out.inserted, ep.InsertedRows)
		out.deleted = append(out.deleted, ep.DeletedRows)
		out.Epochs = append(out.Epochs, wrapEpoch(ep))
		if opts.OnDelta != nil && res.View != nil {
			opts.OnDelta(wrapDelta(res.View, ep.InsertedRows), wrapDelta(res.View, ep.DeletedRows))
		}
	}
	if res.View != nil {
		out.Rows = wrapRows(res.View.Schema(), res.Rows)
		out.schema = res.View.Schema()
	} else if len(res.Rows) > 0 {
		out.Rows = wrapRows(res.Rows[0].Schema, res.Rows)
	} else {
		out.Rows = &Rows{}
	}
	if opts.Profile {
		out.Profile = progressiveProfile(out, wall)
	}
	return out, nil
}

// wrapEpoch converts an internal epoch report to the public shape.
func wrapEpoch(ep progressive.EpochReport) Epoch {
	return Epoch{
		N: ep.Epoch, Planned: ep.Planned, Enrichments: ep.Executed,
		Skipped: ep.Skipped, Coalesced: ep.Coalesced,
		Quality: ep.Quality, Inserted: ep.Inserted, Deleted: ep.Deleted, Wall: ep.Wall,
		PlanTime: ep.PlanTime, EnrichTime: ep.EnrichTime, DeltaTime: ep.DeltaTime,
		EnrichErr: ep.EnrichErr,
	}
}

// wrapDelta wraps delta rows under the view's output schema.
func wrapDelta(view interface{ Schema() *expr.RowSchema }, rows []*expr.Row) *Rows {
	if len(rows) == 0 {
		return &Rows{}
	}
	return wrapRows(view.Schema(), rows)
}
