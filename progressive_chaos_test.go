package enrichdb

import (
	"strings"
	"sync"
	"testing"

	"enrichdb/internal/faultinject"
	"enrichdb/internal/loose"
)

// TestProgressiveChaosTwoSessions drives two concurrent progressive sessions
// through an enrichment server that dies mid-epoch (the shared chaos plan
// fails the first whole batches, then recovers). Per DESIGN §6 both queries
// must degrade, not die: a lost batch enriches nothing, its epoch reports
// the failure, the plan re-queues, and once the server recovers both
// sessions converge on exactly the fully enriched answer.
func TestProgressiveChaosTwoSessions(t *testing.T) {
	db := servingDB(t, 60)
	defer db.Close()

	chaos := faultinject.Wrap(db.enricher.(*loose.LocalEnricher),
		faultinject.Plan{Seed: 11, FailBatches: 3})
	db.enricher = chaos

	const q = "SELECT id, label FROM Events WHERE label = 1"
	results := make([]*ProgressiveResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := db.Session()
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close()
			results[i], errs[i] = sess.QueryProgressive(q, ProgressiveOptions{
				Seed:      int64(40 + i),
				MaxEpochs: 50,
			})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d died instead of degrading: %v", i, err)
		}
	}
	if got := chaos.FailedBatches(); got != 3 {
		t.Fatalf("chaos injected %d whole-batch failures, want 3", got)
	}
	failedEpochs := results[0].FailedEpochs + results[1].FailedEpochs
	if failedEpochs != 3 {
		t.Errorf("sessions report %d failed epochs total, want the 3 lost batches", failedEpochs)
	}
	reported := 0
	for _, res := range results {
		for _, ep := range res.Epochs {
			if ep.EnrichErr != "" {
				reported++
				if ep.Enrichments != 0 {
					t.Errorf("epoch %d failed (%s) but claims %d enrichments", ep.N, ep.EnrichErr, ep.Enrichments)
				}
			}
		}
	}
	if reported != failedEpochs {
		t.Errorf("%d epochs carry EnrichErr, FailedEpochs says %d", reported, failedEpochs)
	}

	// The server recovered and the two sessions drained the re-planned
	// backlog between them, so the shared state is complete: a loose query
	// needs no enrichment at all and yields the true answer.
	ref, err := db.QueryLoose(q)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Enrichments != 0 || ref.FailedEnrichments != 0 {
		t.Errorf("loose after chaos: %d enrichments (%d failed), want 0 — the sessions should have finished the work",
			ref.Enrichments, ref.FailedEnrichments)
	}

	// Each session's answer reflects its own epochs' progress: enrichment a
	// peer performed on tuples this session never planned isn't in its IVM
	// view, so a degraded answer may lag the truth — but it can never
	// contradict it (labels are first-write-wins and deterministic).
	want := renderRows(ref.Rows)
	for i, res := range results {
		got := renderRows(res.Rows)
		for _, line := range strings.Split(got, "\n")[1:] {
			if line != "" && !strings.Contains(want, "\n"+line) {
				t.Errorf("session %d answer has row %q absent from the true answer", i, line)
			}
		}
	}

	// A fresh progressive query converges immediately — everything is
	// already enriched, so it runs zero functions and returns the truth.
	res2, err := db.QueryProgressive(q, ProgressiveOptions{Seed: 99, MaxEpochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalEnrichments != 0 {
		t.Errorf("post-recovery progressive ran %d enrichments, want 0", res2.TotalEnrichments)
	}
	if got := renderRows(res2.Rows); got != want {
		t.Errorf("post-recovery progressive answer:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestProgressiveChaosErrorRate: per-request chaos degrades individual
// requests, never the query. A failed request leaves its state bits unset,
// so the degraded answer is a subset of the true one, and re-running through
// a healthy server enriches exactly what's missing (DESIGN §6: retrying is
// just re-running the query).
func TestProgressiveChaosErrorRate(t *testing.T) {
	db := servingDB(t, 40)
	defer db.Close()

	clean := db.enricher
	chaos := faultinject.Wrap(clean.(*loose.LocalEnricher),
		faultinject.Plan{Seed: 23, ErrorRate: 0.25})
	db.enricher = chaos

	const q = "SELECT id, label FROM Events WHERE label = 0"
	res, err := db.QueryProgressive(q, ProgressiveOptions{Seed: 5, MaxEpochs: 60})
	if err != nil {
		t.Fatalf("progressive under 25%% error rate died: %v", err)
	}
	if chaos.Injected() == 0 {
		t.Fatal("chaos injected nothing; raise the rate or the workload")
	}
	if res.FailedEpochs != 0 {
		t.Errorf("per-request errors must not fail whole epochs; got %d", res.FailedEpochs)
	}

	// Heal the server; the loose retry repairs what chaos dropped, and the
	// degraded progressive answer must be contained in the true one.
	db.enricher = clean
	ref, err := db.QueryLoose(q)
	if err != nil {
		t.Fatal(err)
	}
	if ref.FailedEnrichments != 0 {
		t.Errorf("healthy retry failed %d enrichments", ref.FailedEnrichments)
	}
	full := renderRows(ref.Rows)
	degraded := renderRows(res.Rows)
	for _, line := range strings.Split(degraded, "\n")[1:] {
		if line != "" && !strings.Contains(full, "\n"+line) {
			t.Errorf("degraded answer has row %q absent from the true answer", line)
		}
	}
}
