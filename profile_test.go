package enrichdb

// EXPLAIN ANALYZE golden tests. Cardinalities on a seeded fixture are exact
// and asserted exactly; wall times are only asserted present and monotone
// (a child's inclusive wall can never exceed its parent's).

import (
	"context"
	"strings"
	"testing"
)

// checkProfileTree walks a profile asserting every node has a measured wall
// time no larger than its parent's (figures are inclusive of children).
func checkProfileTree(t *testing.T, n *OpProfile) {
	t.Helper()
	if n.Wall <= 0 {
		t.Errorf("node %s %s: wall = %v, want > 0", n.Name, n.Detail, n.Wall)
	}
	for _, c := range n.Children {
		if c.Wall > n.Wall {
			t.Errorf("child %s wall %v exceeds inclusive parent %s wall %v", c.Name, c.Wall, n.Name, n.Wall)
		}
		checkProfileTree(t, c)
	}
}

func TestExplainAnalyzePlain(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	defer db.Close()
	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Profiling off by default: no profile comes back.
	rows, prof, err := sess.QueryObsCtx(context.Background(), "SELECT id, store FROM Reviews WHERE day < 10", QueryObs{})
	if err != nil {
		t.Fatal(err)
	}
	if prof != nil {
		t.Fatalf("profile returned with obs off: %+v", prof)
	}

	rows2, prof, err := sess.QueryObsCtx(context.Background(), "SELECT id, store FROM Reviews WHERE day < 10", QueryObs{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || prof.Root == nil {
		t.Fatal("no profile with obs.Profile set")
	}
	if prof.Design != "plain" {
		t.Fatalf("profile design = %q, want plain", prof.Design)
	}
	if rows.Len() != rows2.Len() {
		t.Fatalf("profiled query returned %d rows, unprofiled %d", rows2.Len(), rows.Len())
	}
	// day = i%30 over 200 rows: days 0..9 hit 7 times each, except 0..19
	// hit 7 times and 20..29 hit 6 — days 0..9 occur ceil(200/30) = 7 times.
	if prof.Root.RowsOut != int64(rows2.Len()) {
		t.Fatalf("root rows-out = %d, want %d", prof.Root.RowsOut, rows2.Len())
	}
	// Some node must have consumed the full 200-row relation.
	var sawFullScan bool
	var walk func(n *OpProfile)
	walk = func(n *OpProfile) {
		if n.RowsIn == 200 {
			sawFullScan = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(prof.Root)
	if !sawFullScan {
		t.Fatalf("no operator consumed the 200-row base relation:\n%s", prof)
	}
	checkProfileTree(t, prof.Root)
	if out := prof.String(); !strings.Contains(out, "out=") || !strings.Contains(out, "wall=") {
		t.Fatalf("rendered profile missing figures:\n%s", out)
	}
}

func TestExplainAnalyzeLooseAndTight(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	defer db.Close()
	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	q := "SELECT id, rating FROM Reviews WHERE rating = 2"
	lres, err := sess.QueryLooseObs(q, QueryObs{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Profile == nil || lres.Profile.Root == nil {
		t.Fatal("loose query returned no profile")
	}
	root := lres.Profile.Root
	if root.Name != "LooseQuery" {
		t.Fatalf("loose profile root = %q, want LooseQuery", root.Name)
	}
	if root.RowsOut != int64(lres.Rows.Len()) {
		t.Fatalf("loose root rows-out = %d, result has %d", root.RowsOut, lres.Rows.Len())
	}
	phases := make(map[string]bool)
	for _, c := range root.Children {
		phases[c.Name] = true
	}
	for _, want := range []string{"LooseProbe", "LooseEnrich", "LooseExecute"} {
		if !phases[want] {
			t.Errorf("loose profile missing phase %s; got %v", want, phases)
		}
	}
	checkProfileTree(t, root)

	// Tight runs the rewritten plan under the same profiler: the root is the
	// plan's top operator and UDF-wrapped predicates show up as Filters.
	tres, err := sess.QueryTightObs(q, QueryObs{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Profile == nil || tres.Profile.Root == nil {
		t.Fatal("tight query returned no profile")
	}
	if tres.Profile.Design != "tight" {
		t.Fatalf("tight profile design = %q", tres.Profile.Design)
	}
	if tres.Profile.Root.RowsOut != int64(tres.Rows.Len()) {
		t.Fatalf("tight root rows-out = %d, result has %d", tres.Profile.Root.RowsOut, tres.Rows.Len())
	}
	checkProfileTree(t, tres.Profile.Root)

	// Loose and tight agree on the answer, so their profiled rows-out match.
	if root.RowsOut != tres.Profile.Root.RowsOut {
		t.Fatalf("loose rows-out %d != tight rows-out %d", root.RowsOut, tres.Profile.Root.RowsOut)
	}
}

func TestExplainAnalyzeProgressive(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	defer db.Close()

	res, err := db.QueryProgressive("SELECT id, rating FROM Reviews WHERE rating = 2",
		ProgressiveOptions{MaxEpochs: 50, EpochBudget: 0, Seed: 7, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || res.Profile.Root == nil {
		t.Fatal("progressive run returned no profile")
	}
	root := res.Profile.Root
	if root.Name != "ProgressiveQuery" {
		t.Fatalf("progressive root = %q, want ProgressiveQuery", root.Name)
	}
	if root.RowsOut != int64(res.Len()) {
		t.Fatalf("progressive root rows-out = %d, result has %d", root.RowsOut, res.Len())
	}
	names := make(map[string]bool)
	for _, c := range root.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"Setup", "Plan", "Enrich", "Refresh"} {
		if !names[want] {
			t.Errorf("progressive profile missing phase %s; got %v", want, names)
		}
	}
	if root.Wall <= 0 {
		t.Fatalf("progressive root wall = %v", root.Wall)
	}

	// Without Profile the result carries none.
	res2, err := db.QueryProgressive("SELECT id, rating FROM Reviews WHERE rating = 2",
		ProgressiveOptions{MaxEpochs: 50, EpochBudget: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Profile != nil {
		t.Fatal("progressive profile returned without opts.Profile")
	}
}
