package enrichdb

import (
	"encoding/gob"
	"fmt"
	"io"

	"enrichdb/internal/enrich"
	"enrichdb/internal/types"
)

// snapshot is the gob wire format of a database's data and enrichment state.
// Models are code, not data: enrichment functions are re-registered by the
// application before loading.
type snapshot struct {
	Version   int
	Relations []relationSnapshot
}

type relationSnapshot struct {
	Name    string
	Columns []string // schema fingerprint: column names in order
	Tuples  []tupleSnapshot
	State   []enrich.StateRecord
}

type tupleSnapshot struct {
	ID   int64
	Vals []types.Value
}

const snapshotVersion = 1

// SaveSnapshot serializes every relation's tuples and enrichment state. The
// stream does not contain schemas or models: a loading process recreates the
// relations and re-registers the enrichment functions first, then calls
// LoadSnapshot — after which all previously performed enrichment work is
// available (nothing re-executes).
//
// The save is a consistent cut: it holds the commit lock, so no insert,
// fixed-attribute update or delete lands mid-stream and every exported state
// record belongs to the tuple image exported next to it. Concurrent
// query-time enrichment keeps running — its writes are additive within the
// current tuple generations (state first, then the base-table value), so the
// worst skew is a snapshot that knows an output in the state table before
// the determined value reached the base table, which LoadSnapshot resolves
// in the state's favor. Tuple generations themselves are not persisted: a
// loaded database starts every tuple at generation zero with its imported
// state keyed the same way, which is exactly consistent.
func (db *DB) SaveSnapshot(w io.Writer) error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	snap := snapshot{Version: snapshotVersion}
	for _, rel := range db.store.Catalog().Relations() {
		tbl, err := db.store.BaseTable(rel)
		if err != nil {
			return err
		}
		schema := tbl.Schema()
		rs := relationSnapshot{Name: rel}
		for _, c := range schema.Cols {
			rs.Columns = append(rs.Columns, c.Name)
		}
		for _, tid := range tbl.IDs() {
			tu := tbl.Get(tid)
			vals := make([]types.Value, len(tu.Vals))
			copy(vals, tu.Vals)
			rs.Tuples = append(rs.Tuples, tupleSnapshot{ID: tid, Vals: vals})
		}
		if st := db.mgr.StateTable(rel); st != nil {
			rs.State = st.Export()
		}
		snap.Relations = append(snap.Relations, rs)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// LoadSnapshot restores tuples and enrichment state into this database.
// Preconditions: the relations exist with matching column lists (created via
// CreateRelation), the tables are empty, and the enrichment families are
// already registered (state import validates attribute and function ids
// against them).
func (db *DB) LoadSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("enrichdb: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("enrichdb: snapshot version %d not supported", snap.Version)
	}
	for _, rs := range snap.Relations {
		tbl, err := db.store.Table(rs.Name)
		if err != nil {
			return fmt.Errorf("enrichdb: snapshot relation %s not created: %w", rs.Name, err)
		}
		schema := tbl.Schema()
		if len(schema.Cols) != len(rs.Columns) {
			return fmt.Errorf("enrichdb: %s: schema has %d columns, snapshot %d",
				rs.Name, len(schema.Cols), len(rs.Columns))
		}
		for i, name := range rs.Columns {
			if schema.Cols[i].Name != name {
				return fmt.Errorf("enrichdb: %s: column %d is %s, snapshot has %s",
					rs.Name, i, schema.Cols[i].Name, name)
			}
		}
		if tbl.Len() != 0 {
			return fmt.Errorf("enrichdb: %s: table not empty", rs.Name)
		}
		for _, tu := range rs.Tuples {
			if _, err := db.Insert(rs.Name, tu.ID, tu.Vals...); err != nil {
				return fmt.Errorf("enrichdb: %s: restore tuple %d: %w", rs.Name, tu.ID, err)
			}
		}
		if len(rs.State) > 0 {
			st := db.mgr.StateTable(rs.Name)
			if st == nil {
				return fmt.Errorf("enrichdb: %s: snapshot carries enrichment state but no families are registered", rs.Name)
			}
			if err := st.Import(rs.State); err != nil {
				return err
			}
		}
	}
	return nil
}
