package enrichdb_test

import (
	"fmt"
	"math/rand"
	"time"

	"enrichdb"
)

// buildExampleDB assembles a tiny database with one derived attribute for
// the godoc examples.
func buildExampleDB() *enrichdb.DB {
	db := enrichdb.Open()
	if err := db.CreateRelation("Items", []enrichdb.Column{
		{Name: "id", Kind: enrichdb.KindInt},
		{Name: "vec", Kind: enrichdb.KindVector},
		{Name: "bucket", Kind: enrichdb.KindInt},
		{Name: "class", Kind: enrichdb.KindInt, Derived: true, FeatureCol: "vec", Domain: 2},
	}); err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(4))
	sample := func(c int) []float64 {
		base := float64(c*8 - 4)
		return []float64{base + r.NormFloat64(), base + r.NormFloat64()}
	}
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		c := i % 2
		X = append(X, sample(c))
		y = append(y, c)
	}
	model := enrichdb.NewGNB()
	if err := model.Fit(X, y, 2); err != nil {
		panic(err)
	}
	if err := db.RegisterEnrichment("Items", "class", enrichdb.Function{
		Model: model, Quality: enrichdb.Accuracy(model, X, y),
	}); err != nil {
		panic(err)
	}
	for i := 1; i <= 100; i++ {
		if _, err := db.Insert("Items", int64(i),
			enrichdb.Int(int64(i)), enrichdb.Vector(sample(i%2)),
			enrichdb.Int(int64(i%4)), enrichdb.Null); err != nil {
			panic(err)
		}
	}
	return db
}

// Queries enrich lazily: the first run executes the classifier for exactly
// the tuples the query needs, the second run reuses the state.
func ExampleDB_QueryLoose() {
	db := buildExampleDB()
	first, _ := db.QueryLoose("SELECT id FROM Items WHERE class = 1 AND bucket = 0")
	again, _ := db.QueryLoose("SELECT id FROM Items WHERE class = 1 AND bucket = 0")
	fmt.Println(first.Len() == again.Len(), first.Enrichments > 0, again.Enrichments)
	// Output: true true 0
}

// The tight design evaluates predicates with short-circuiting UDFs.
func ExampleDB_QueryTight() {
	db := buildExampleDB()
	res, _ := db.QueryTight("SELECT id FROM Items WHERE class = 0 AND bucket IN (1, 2)")
	fmt.Println(res.Len() > 0, res.Enrichments > 0, res.UDFInvocations > res.Enrichments)
	// Output: true true true
}

// Progressive execution refines the answer across epochs; the progressive
// score summarizes how quickly quality arrived.
func ExampleDB_QueryProgressive() {
	db := buildExampleDB()
	res, _ := db.QueryProgressive("SELECT id FROM Items WHERE class = 1", enrichdb.ProgressiveOptions{
		Strategy:    enrichdb.FunctionOrdered,
		EpochBudget: time.Millisecond,
	})
	fmt.Println(res.Len() > 0, len(res.Epochs) >= 1, res.TotalEnrichments > 0)
	// Output: true true true
}
