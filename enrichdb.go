// Package enrichdb is a relational data management system that supports
// complex enrichment of data at query time, reproducing the system of
// "Supporting Complex Query Time Enrichment For Analytics" (EDBT 2023).
//
// Relations mix fixed attributes with derived attributes whose values are
// produced by ML enrichment functions. Instead of enriching at ingestion,
// enrichdb enriches lazily during query processing, in either of the paper's
// two architectures:
//
//   - the loose design (QueryLoose): probe queries compute the minimal tuple
//     set to enrich, an enrichment server (in process or over TCP) enriches
//     it in batch, and the query then runs normally;
//   - the tight design (QueryTight): the query is rewritten so predicates
//     over derived attributes invoke UDFs that enrich lazily inside
//     predicate evaluation, with short-circuiting avoiding needless work.
//
// Both designs come in progressive form (QueryProgressive): execution is
// split into cost-budgeted epochs over function families with a cost/quality
// tradeoff, and an incrementally maintained view refines the answer as
// enrichment proceeds.
package enrichdb

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"enrichdb/internal/catalog"
	"enrichdb/internal/engine"
	"enrichdb/internal/enrich"
	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
	"enrichdb/internal/ml"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/stats"
	"enrichdb/internal/storage"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/tight"
	"enrichdb/internal/types"
)

// Value is a database value (NULL, INT, FLOAT, TEXT, BOOL or VECTOR).
type Value = types.Value

// Null is the NULL value.
var Null = types.Null

// Value constructors.
var (
	Int    = types.NewInt
	Float  = types.NewFloat
	String = types.NewString
	Bool   = types.NewBool
	Vector = types.NewVector
)

// Kind is a column type.
type Kind = types.Kind

// Column kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
	KindVector = types.KindVector
)

// Column declares one attribute of a relation. Derived attributes require a
// FeatureCol (the fixed column whose value feeds the enrichment functions)
// and a Domain (the number of class labels).
type Column struct {
	Name       string
	Kind       Kind
	Derived    bool
	FeatureCol string
	Domain     int
}

// Classifier is a trainable probabilistic classifier usable as an
// enrichment function. The internal model zoo (NewGNB, NewRandomForest, …)
// satisfies it, as can user implementations.
type Classifier = ml.Classifier

// DB is an enrichdb database instance.
//
// A DB is safe for concurrent use. Writes (Insert, Update, Delete) serialize
// through a commit path that stamps each commit with a monotonic version;
// queries on the DB itself read the live tables (read-committed), while
// Session provides snapshot-isolated reads over a frozen version. Derived
// values written back by query-time enrichment are not commits: they carry
// no version and are guarded by tuple generations instead.
type DB struct {
	store storage.Store
	mgr   *enrich.Manager

	// commitMu serializes the write path; version is the commit counter it
	// advances. Version reads are atomic so sessions can tag snapshots
	// without taking the commit lock.
	commitMu sync.Mutex
	version  atomic.Uint64

	serving atomic.Pointer[admission]

	enricher loose.Enricher
	servers  []*remote.Server
	tracer   *telemetry.Tracer

	// TightInvokeOverhead adds an artificial per-UDF-call cost to the tight
	// design, emulating a heavier DBMS's per-row UDF invocation overhead.
	TightInvokeOverhead time.Duration

	// NoAdaptive disables adaptive cost-based optimization (DESIGN §14):
	// runtime-statistics feedback, cheapest-rejection-first conjunct
	// reordering, observed-cardinality join ordering and benefit-ranked
	// progressive re-planning. With it set, every query runs exactly the
	// static plan the pre-adaptive engine produced. Ablation knob, mirrors
	// the NoVectorScan family.
	NoAdaptive bool

	// runtimeStats is the shared EWMA store every query on this DB feeds and
	// consults. It carries observations across queries — the feedback loop
	// that lets a later query start from the selectivities an earlier one
	// measured.
	runtimeStats *stats.Store
}

// Open creates an empty database.
func Open() *DB {
	store := storage.NewDB()
	mgr := enrich.NewManager()
	return &DB{
		store:        store,
		mgr:          mgr,
		enricher:     &loose.LocalEnricher{Mgr: mgr},
		runtimeStats: stats.NewStore(),
	}
}

// CreateRelation defines a relation.
func (db *DB) CreateRelation(name string, cols []Column) error {
	cc := make([]catalog.Column, len(cols))
	for i, c := range cols {
		cc[i] = catalog.Column{
			Name: c.Name, Kind: c.Kind, Derived: c.Derived,
			FeatureCol: c.FeatureCol, Domain: c.Domain,
		}
	}
	schema, err := catalog.NewSchema(name, cc)
	if err != nil {
		return err
	}
	_, err = db.store.CreateBase(schema)
	return err
}

// CreateIndex builds a hash index on a fixed column.
func (db *DB) CreateIndex(relation, column string) error {
	tbl, err := db.store.BaseTable(relation)
	if err != nil {
		return err
	}
	return tbl.CreateIndex(column)
}

// Insert stores a tuple; values are positional per the relation's columns.
// Derived attributes should be inserted as Null (they are enriched at query
// time). A zero id auto-assigns.
func (db *DB) Insert(relation string, id int64, values ...Value) (int64, error) {
	tbl, err := db.store.BaseTable(relation)
	if err != nil {
		return 0, err
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	tid, err := tbl.Insert(&types.Tuple{ID: id, Vals: values})
	if err != nil {
		return 0, err
	}
	db.version.Add(1)
	return tid, nil
}

// InsertEnriched stores a tuple and eagerly enriches every derived
// attribute with its full function family before returning — the
// at-ingestion strategy the paper's Baseline uses. It is provided for
// completeness and for measuring the ingestion-rate cost of eager
// enrichment; the query-time designs exist to avoid it.
func (db *DB) InsertEnriched(relation string, id int64, values ...Value) (int64, error) {
	tid, err := db.Insert(relation, id, values...)
	if err != nil {
		return 0, err
	}
	tbl, err := db.store.Table(relation)
	if err != nil {
		return 0, err
	}
	schema := tbl.Schema()
	tu := tbl.Get(tid)
	for _, attr := range schema.DerivedCols() {
		fam := db.mgr.Family(relation, attr)
		if fam == nil {
			continue // no functions registered for this attribute
		}
		col := schema.Col(attr)
		feature := tu.Vals[schema.ColIndex(col.FeatureCol)].Vector()
		for _, fn := range fam.Functions {
			if _, err := db.mgr.Execute(relation, tid, attr, fn.ID, feature); err != nil {
				return 0, err
			}
		}
		v, err := db.mgr.Determine(relation, tid, attr, feature)
		if err != nil {
			return 0, err
		}
		if _, err := tbl.Update(tid, attr, v); err != nil {
			return 0, err
		}
	}
	return tid, nil
}

// Update replaces one column of one tuple. Updating any column of a tuple
// resets its enrichment state (§3.3.5 of the paper): stale derived values
// must be recomputed.
func (db *DB) Update(relation string, id int64, column string, v Value) error {
	tbl, err := db.store.BaseTable(relation)
	if err != nil {
		return err
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	schema := tbl.Schema()
	if c := schema.Col(column); c != nil && !c.Derived {
		if tbl.Get(id) == nil {
			return fmt.Errorf("enrichdb: %s has no tuple %d", relation, id)
		}
		// A fixed-attribute write supersedes the tuple's enrichment (§3.3.5).
		// Invalidate the shared state first, at the generation the commit
		// installs, so enrichment of the old image arriving in the window is
		// dropped and enrichment of the new image is never invalidated; then
		// swap the new fixed value and the cleared derived values in as one
		// atomic image (readers never see a torn half-updated tuple).
		db.mgr.ResetTupleGen(relation, id, tbl.Gen(id)+1)
		if _, err := tbl.CommitFixed(id, column, v); err != nil {
			return err
		}
	} else {
		if _, err := tbl.Update(id, column, v); err != nil {
			return err
		}
	}
	db.version.Add(1)
	return nil
}

// Delete removes a tuple and its enrichment state.
func (db *DB) Delete(relation string, id int64) error {
	tbl, err := db.store.BaseTable(relation)
	if err != nil {
		return err
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if tbl.Delete(id) == nil {
		return fmt.Errorf("enrichdb: %s has no tuple %d", relation, id)
	}
	db.mgr.ResetTuple(relation, id)
	db.version.Add(1)
	return nil
}

// Function couples a trained classifier with the metadata the progressive
// planner uses.
type Function struct {
	// Name identifies the function in reports; defaults to the model name.
	Name string
	// Model is the trained classifier. Its PredictProba must return a
	// distribution over the derived attribute's domain.
	Model Classifier
	// Quality is the function's estimated accuracy (for SB(FO) ordering).
	Quality float64
	// ExtraCost adds an artificial per-object cost, e.g. to emulate a
	// heavyweight model.
	ExtraCost time.Duration
}

// RegisterEnrichment attaches a function family to a derived attribute. All
// families of a relation must be registered before the first enrichment.
// The determinizer defaults to averaging the executed functions'
// distributions (see WithDeterminizer options on Register* variants below).
func (db *DB) RegisterEnrichment(relation, attr string, fns ...Function) error {
	return db.registerEnrichment(relation, attr, enrich.AvgProb{}, fns...)
}

// RegisterEnrichmentMajority is RegisterEnrichment with a majority-vote
// determinization function.
func (db *DB) RegisterEnrichmentMajority(relation, attr string, fns ...Function) error {
	return db.registerEnrichment(relation, attr, enrich.MajorityVote{}, fns...)
}

func (db *DB) registerEnrichment(relation, attr string, det enrich.Determinizer, fns ...Function) error {
	schema := db.store.Catalog().Schema(relation)
	if schema == nil {
		return fmt.Errorf("enrichdb: unknown relation %s", relation)
	}
	col := schema.Col(attr)
	if col == nil || !col.Derived {
		return fmt.Errorf("enrichdb: %s.%s is not a derived attribute", relation, attr)
	}
	efs := make([]*enrich.Function, len(fns))
	for i, f := range fns {
		name := f.Name
		if name == "" && f.Model != nil {
			name = f.Model.Name()
		}
		efs[i] = &enrich.Function{
			Name: name, Model: f.Model, Quality: f.Quality, ExtraCost: f.ExtraCost,
		}
	}
	fam, err := enrich.NewFamily(relation, attr, col.Domain, det, efs...)
	if err != nil {
		return err
	}
	return db.mgr.Register(fam)
}

// SetStateCutoff applies the state-cutoff threshold of §3.2: stored
// probabilities below the threshold are pruned, shrinking the state tables
// at the price of occasional re-executions during determinization.
func (db *DB) SetStateCutoff(threshold float64) {
	db.mgr.SetCutoff(threshold)
}

// EnrichmentServerConfig tunes ServeEnrichmentConfig. The zero value means
// unlimited connections and the default shutdown drain.
type EnrichmentServerConfig struct {
	// MaxConns caps concurrent client connections (0 = unlimited).
	MaxConns int
	// DrainTimeout bounds how long Close waits for in-flight batches.
	DrainTimeout time.Duration
	// Workers sets the server's parallel enrichment width (0 or 1
	// sequential, negative = GOMAXPROCS).
	Workers int
	// FaultLatency, if positive, delays every batch this server executes —
	// a degraded (slow) fleet member for fault testing.
	FaultLatency time.Duration
	// FaultErrorRate, if positive, fails roughly that fraction of requests
	// (0..1) with injected errors, deterministically from FaultSeed.
	FaultErrorRate float64
	// FaultSeed seeds the injected-error stream (used when FaultErrorRate>0).
	FaultSeed int64
}

// ServeEnrichment starts an enrichment server for the loose design on addr
// (use "127.0.0.1:0" for an ephemeral port) and returns its address. The
// server executes this database's registered function families.
func (db *DB) ServeEnrichment(addr string) (string, error) {
	return db.ServeEnrichmentConfig(addr, EnrichmentServerConfig{})
}

// ServeEnrichmentConfig is ServeEnrichment with explicit robustness knobs.
func (db *DB) ServeEnrichmentConfig(addr string, cfg EnrichmentServerConfig) (string, error) {
	h, err := db.ServeEnrichmentHandle(addr, cfg)
	if err != nil {
		return "", err
	}
	return h.Addr(), nil
}

// EnrichmentClientConfig tunes ConnectEnrichmentServerConfig. The zero value
// applies the production defaults: a 30s per-call deadline, 2 retries with
// exponential backoff + jitter, and automatic re-dial after broken
// connections. Negative values disable the corresponding mechanism.
type EnrichmentClientConfig struct {
	// CallTimeout bounds each enrichment RPC (0 = default, negative = none).
	CallTimeout time.Duration
	// MaxRetries is the number of extra attempts after a transport failure
	// (0 = default, negative = none).
	MaxRetries int
	// ExtraLatency, if positive, is added per batch to emulate a longer
	// link (it is accounted as network time).
	ExtraLatency time.Duration
}

// ConnectEnrichmentServer points the loose design at a remote enrichment
// server instead of the default in-process one, with default fault
// tolerance. extraLatency, if positive, is added per batch to emulate a
// longer link.
func (db *DB) ConnectEnrichmentServer(addr string, extraLatency time.Duration) error {
	return db.ConnectEnrichmentServerConfig(addr, EnrichmentClientConfig{ExtraLatency: extraLatency})
}

// ConnectEnrichmentServerConfig is ConnectEnrichmentServer with explicit
// fault-tolerance knobs. If the server fails mid-query, the loose design
// degrades: failed enrichments leave their derived attributes NULL and are
// counted in Result.FailedEnrichments; re-running the query retries them.
func (db *DB) ConnectEnrichmentServerConfig(addr string, cfg EnrichmentClientConfig) error {
	client, err := remote.DialOptions(addr, remote.Options{
		CallTimeout: cfg.CallTimeout,
		MaxRetries:  cfg.MaxRetries,
		Telemetry:   db.mgr.Telemetry(),
	})
	if err != nil {
		return err
	}
	client.ExtraLatency = cfg.ExtraLatency
	db.closeEnricher()
	db.enricher = client
	return nil
}

// UseLocalEnrichment reverts the loose design to in-process enrichment.
func (db *DB) UseLocalEnrichment() {
	db.closeEnricher()
	db.enricher = &loose.LocalEnricher{Mgr: db.mgr}
}

// Close releases transports started by this DB.
func (db *DB) Close() error {
	db.closeEnricher()
	for _, s := range db.servers {
		s.Close()
	}
	return nil
}

// Telemetry returns the database's metrics registry — the single place all
// components publish counters to: enrichment execution (enrich.*), the tight
// runtime's UDF accounting (tight.*), the loose enrichment path (loose.*,
// remote.*), executor stats (engine.*), view maintenance (ivm.*) and the
// progressive epoch loop (epoch.*). Snapshot it for a consistent read.
func (db *DB) Telemetry() *telemetry.Registry { return db.mgr.Telemetry() }

// SetTracer installs a structured-span tracer on the database: both designs
// and the progressive pipeline emit spans through it. Nil (the default)
// disables tracing at zero cost.
func (db *DB) SetTracer(t *telemetry.Tracer) { db.tracer = t }

// Stats returns cumulative enrichment counters.
func (db *DB) Stats() EnrichmentStats {
	c := db.mgr.Counters()
	return EnrichmentStats{
		Enrichments:    c.Enrichments,
		Skipped:        c.Skipped,
		ReExecutions:   c.ReExecutions,
		StateSizeBytes: db.mgr.StateSizeBytes(),
	}
}

// EnrichmentStats summarizes enrichment activity and state storage.
type EnrichmentStats struct {
	Enrichments    int64
	Skipped        int64
	ReExecutions   int64
	StateSizeBytes int64
}

// analyzeSQL parses and analyzes a query against this database.
func (db *DB) analyzeSQL(query string) (*engine.Analysis, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	return engine.Analyze(stmt, db.store.Catalog())
}

// looseDriver builds the current loose driver.
func (db *DB) looseDriver() *loose.Driver {
	return &loose.Driver{DB: db.store, Mgr: db.mgr, Enricher: db.enricher, Tracer: db.tracer,
		Stats: db.runtimeStats, NoAdaptive: db.NoAdaptive}
}

// tightDriver builds the current tight driver.
func (db *DB) tightDriver() *tight.Driver {
	return &tight.Driver{DB: db.store, Mgr: db.mgr, InvokeOverhead: db.TightInvokeOverhead, Tracer: db.tracer,
		Stats: db.runtimeStats, NoAdaptive: db.NoAdaptive}
}

// RuntimeStats renders the database's runtime-statistics store — the EWMA
// selectivities, function costs and operator cardinalities the adaptive
// optimizer has accumulated (DESIGN §14). Deterministically ordered; empty
// string before any query ran.
func (db *DB) RuntimeStats() string { return db.runtimeStats.String() }
