package enrichdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	// Source DB: enrich some tuples so there is real state to carry.
	src, _, _ := buildReviewDB(t)
	res1, err := src.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND day < 15")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Enrichments == 0 {
		t.Fatal("setup: nothing enriched")
	}
	srcAll, err := src.Query("SELECT * FROM Reviews")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Destination: identical schema and (deterministically retrained)
	// models, no data — then load the snapshot.
	dst, _, _ := reviewDBWith(t, false)
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// All tuples restored, including already-determined derived values.
	dstAll, err := dst.Query("SELECT * FROM Reviews")
	if err != nil {
		t.Fatal(err)
	}
	if dstAll.Len() != srcAll.Len() {
		t.Fatalf("restored %d tuples, want %d", dstAll.Len(), srcAll.Len())
	}
	srcEnriched, _ := src.Query("SELECT id FROM Reviews WHERE rating IS NOT NULL")
	dstEnriched, _ := dst.Query("SELECT id FROM Reviews WHERE rating IS NOT NULL")
	if srcEnriched.Len() == 0 || dstEnriched.Len() != srcEnriched.Len() {
		t.Fatalf("enriched values: src %d dst %d", srcEnriched.Len(), dstEnriched.Len())
	}

	// The restored state prevents re-enrichment: re-running the original
	// query on the destination must execute zero functions.
	res2, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND day < 15")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Enrichments != 0 {
		t.Errorf("restored state should prevent re-enrichment; ran %d", res2.Enrichments)
	}
	if res2.Len() != res1.Len() {
		t.Errorf("answers differ after restore: %d vs %d", res2.Len(), res1.Len())
	}

	// Unenriched attributes still enrich lazily after restore.
	res3, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 0 AND day >= 15")
	if err != nil {
		t.Fatal(err)
	}
	if res3.Enrichments == 0 {
		t.Error("uncovered tuples should enrich after restore")
	}
}

func TestSnapshotCarriesPartialFamilyState(t *testing.T) {
	// Progressive runs leave partial bitmaps (one of two functions run);
	// the snapshot must preserve them exactly.
	src, _, _ := buildReviewDB(t)
	if _, err := src.QueryProgressive("SELECT * FROM Reviews WHERE rating = 1", ProgressiveOptions{
		Strategy:  RandomOrdered,
		MaxEpochs: 2, // stop early: partial state guaranteed
	}); err != nil {
		t.Fatal(err)
	}
	srcStats := src.Stats()
	if srcStats.Enrichments == 0 {
		t.Fatal("setup: nothing enriched")
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _, _ := reviewDBWith(t, false)
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Finishing the query on the destination must only pay for what the
	// source had not executed: total = src + dst ≈ a full cold run.
	cold, _, _ := buildReviewDB(t)
	coldRes, err := cold.QueryLoose("SELECT * FROM Reviews WHERE rating = 1")
	if err != nil {
		t.Fatal(err)
	}
	dstRes, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 1")
	if err != nil {
		t.Fatal(err)
	}
	total := srcStats.Enrichments + dstRes.Enrichments
	if total != coldRes.Enrichments {
		t.Errorf("src %d + dst %d = %d, cold run %d — partial state lost or duplicated",
			srcStats.Enrichments, dstRes.Enrichments, total, coldRes.Enrichments)
	}
}

func TestSnapshotErrors(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a DB without the relation.
	empty := Open()
	if err := empty.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("load without schema must fail")
	}
	// Garbage stream.
	if err := empty.LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage stream must fail")
	}
	// Load into a non-empty DB.
	db2, _, _ := buildReviewDB(t)
	if err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("load into non-empty table must fail")
	}
	// Schema mismatch: same relation name, different columns.
	other := Open()
	if err := other.CreateRelation("Reviews", []Column{{Name: "x", Kind: KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("schema mismatch must fail")
	}
}
