package enrichdb

import (
	"bytes"
	"strings"
	"testing"

	"enrichdb/internal/storage"
)

func TestSnapshotRoundTrip(t *testing.T) {
	// Source DB: enrich some tuples so there is real state to carry.
	src, _, _ := buildReviewDB(t)
	res1, err := src.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND day < 15")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Enrichments == 0 {
		t.Fatal("setup: nothing enriched")
	}
	srcAll, err := src.Query("SELECT * FROM Reviews")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Destination: identical schema and (deterministically retrained)
	// models, no data — then load the snapshot.
	dst, _, _ := reviewDBWith(t, false)
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// All tuples restored, including already-determined derived values.
	dstAll, err := dst.Query("SELECT * FROM Reviews")
	if err != nil {
		t.Fatal(err)
	}
	if dstAll.Len() != srcAll.Len() {
		t.Fatalf("restored %d tuples, want %d", dstAll.Len(), srcAll.Len())
	}
	srcEnriched, _ := src.Query("SELECT id FROM Reviews WHERE rating IS NOT NULL")
	dstEnriched, _ := dst.Query("SELECT id FROM Reviews WHERE rating IS NOT NULL")
	if srcEnriched.Len() == 0 || dstEnriched.Len() != srcEnriched.Len() {
		t.Fatalf("enriched values: src %d dst %d", srcEnriched.Len(), dstEnriched.Len())
	}

	// The restored state prevents re-enrichment: re-running the original
	// query on the destination must execute zero functions.
	res2, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 1 AND day < 15")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Enrichments != 0 {
		t.Errorf("restored state should prevent re-enrichment; ran %d", res2.Enrichments)
	}
	if res2.Len() != res1.Len() {
		t.Errorf("answers differ after restore: %d vs %d", res2.Len(), res1.Len())
	}

	// Unenriched attributes still enrich lazily after restore.
	res3, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 0 AND day >= 15")
	if err != nil {
		t.Fatal(err)
	}
	if res3.Enrichments == 0 {
		t.Error("uncovered tuples should enrich after restore")
	}
}

func TestSnapshotCarriesPartialFamilyState(t *testing.T) {
	// Progressive runs leave partial bitmaps (one of two functions run);
	// the snapshot must preserve them exactly.
	src, _, _ := buildReviewDB(t)
	if _, err := src.QueryProgressive("SELECT * FROM Reviews WHERE rating = 1", ProgressiveOptions{
		Strategy:  RandomOrdered,
		MaxEpochs: 2, // stop early: partial state guaranteed
	}); err != nil {
		t.Fatal(err)
	}
	srcStats := src.Stats()
	if srcStats.Enrichments == 0 {
		t.Fatal("setup: nothing enriched")
	}

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _, _ := reviewDBWith(t, false)
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Finishing the query on the destination must only pay for what the
	// source had not executed: total = src + dst ≈ a full cold run.
	cold, _, _ := buildReviewDB(t)
	coldRes, err := cold.QueryLoose("SELECT * FROM Reviews WHERE rating = 1")
	if err != nil {
		t.Fatal(err)
	}
	dstRes, err := dst.QueryLoose("SELECT * FROM Reviews WHERE rating = 1")
	if err != nil {
		t.Fatal(err)
	}
	total := srcStats.Enrichments + dstRes.Enrichments
	if total != coldRes.Enrichments {
		t.Errorf("src %d + dst %d = %d, cold run %d — partial state lost or duplicated",
			srcStats.Enrichments, dstRes.Enrichments, total, coldRes.Enrichments)
	}
}

func TestSnapshotErrors(t *testing.T) {
	db, _, _ := buildReviewDB(t)
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Load into a DB without the relation.
	empty := Open()
	if err := empty.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("load without schema must fail")
	}
	// Garbage stream.
	if err := empty.LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage stream must fail")
	}
	// Load into a non-empty DB.
	db2, _, _ := buildReviewDB(t)
	if err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("load into non-empty table must fail")
	}
	// Schema mismatch: same relation name, different columns.
	other := Open()
	if err := other.CreateRelation("Reviews", []Column{{Name: "x", Kind: KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("schema mismatch must fail")
	}
}

// TestSnapshotConcurrentEnrichmentAndTombstones saves a snapshot while
// enriching queries run against the source and after deletions have both
// compacted the slab and left fresh tombstones behind. The loaded database
// must hold exactly the survivors, agree with the source on the fully
// enriched answer, and need no re-enrichment once warmed.
func TestSnapshotConcurrentEnrichmentAndTombstones(t *testing.T) {
	src := servingDB(t, 200)
	defer src.Close()

	// Delete ids 1..140: crosses the live*2 <= slab threshold repeatedly,
	// so the slab compacts at least once.
	for id := int64(1); id <= 140; id++ {
		if err := src.Delete("Events", id); err != nil {
			t.Fatal(err)
		}
	}
	// Ids 191..200 land exactly on the next threshold and compact again,
	// shrinking the slab below compactMinSlab — after which ids 141..145
	// stay behind as tombstones.
	for id := int64(191); id <= 200; id++ {
		if err := src.Delete("Events", id); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(141); id <= 145; id++ {
		if err := src.Delete("Events", id); err != nil {
			t.Fatal(err)
		}
	}
	stats := src.store.(*storage.DB).MustTable("Events").Stats()
	if stats.Compactions == 0 {
		t.Fatalf("setup: expected at least one compaction, stats %+v", stats)
	}
	if stats.Tombstones == 0 {
		t.Fatalf("setup: expected post-compaction tombstones, stats %+v", stats)
	}
	if stats.Live != 45 {
		t.Fatalf("setup: live = %d, want 45", stats.Live)
	}

	// Enrich concurrently with the save: the snapshot must be internally
	// consistent whatever prefix of this work it observes.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				_, err = src.QueryLoose("SELECT id, label FROM Events WHERE label = 0")
			} else {
				_, err = src.QueryTight("SELECT id, label FROM Events WHERE label = 1")
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var buf bytes.Buffer
	err := src.SaveSnapshot(&buf)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}

	// Load into a fresh database with the same schema and function.
	dst := servingDB(t, 0)
	defer dst.Close()
	if err := dst.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	dstAll, err := dst.Query("SELECT id FROM Events")
	if err != nil {
		t.Fatal(err)
	}
	if int64(dstAll.Len()) != stats.Live {
		t.Fatalf("restored %d tuples, want %d survivors", dstAll.Len(), stats.Live)
	}
	for i := 0; i < dstAll.Len(); i++ {
		if id := dstAll.At(i)[0].Int(); id <= 145 || id > 190 {
			t.Fatalf("deleted tuple %d resurrected by snapshot", id)
		}
	}

	// The fully enriched answer is a pure function of the fixed data, so
	// source and restored database must agree byte for byte — regardless
	// of how much enrichment the snapshot happened to capture.
	const q = "SELECT id, label FROM Events WHERE label = 1"
	srcRes, err := src.QueryLoose(q)
	if err != nil {
		t.Fatal(err)
	}
	dstRes, err := dst.QueryLoose(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(srcRes.Rows) != renderRows(dstRes.Rows) {
		t.Fatalf("restored answer differs:\nsrc:\n%s\ndst:\n%s",
			renderRows(srcRes.Rows), renderRows(dstRes.Rows))
	}

	// Once warmed, the restored state fully covers the relation.
	again, err := dst.QueryLoose(q)
	if err != nil {
		t.Fatal(err)
	}
	if again.Enrichments != 0 {
		t.Errorf("second query after restore ran %d enrichments, want 0", again.Enrichments)
	}
}
