package enrichdb

import (
	"enrichdb/internal/ml"
)

// The classifier zoo: every model the paper uses as an enrichment function,
// implemented in pure Go. All are deterministic for a fixed seed and return
// calibrated (or naturally probabilistic) distributions.

// NewGNB returns a Gaussian Naive Bayes classifier calibrated with isotonic
// regression (the paper's GNB setup). The cheapest function in the zoo.
func NewGNB() Classifier {
	return &ml.CalibratedClassifier{Base: ml.NewGNB(), Method: "isotonic"}
}

// NewKNN returns a k-nearest-neighbors classifier (default k=5). Inference
// scans the training set — the costliest function in the zoo.
func NewKNN(k int) Classifier { return ml.NewKNN(k) }

// NewDecisionTree returns a CART decision tree with the given depth limit
// (0 = unlimited).
func NewDecisionTree(maxDepth int) Classifier { return ml.NewDecisionTree(maxDepth) }

// NewRandomForest returns a bagged forest of n randomized trees; cost grows
// linearly and quality typically monotonically with n — the same-algorithm
// cost/quality family of the paper's Exp 2.
func NewRandomForest(trees, maxDepth int, seed int64) Classifier {
	return ml.NewRandomForest(trees, maxDepth, seed)
}

// NewLogisticRegression returns a multinomial logistic regression trained by
// SGD.
func NewLogisticRegression(seed int64) Classifier {
	m := ml.NewLogisticRegression()
	m.Seed = seed
	return m
}

// NewLDA returns a Linear Discriminant Analysis classifier with shrinkage.
func NewLDA() Classifier { return ml.NewLDA() }

// NewLinearSVM returns a one-vs-rest linear SVM whose margins are calibrated
// with Platt sigmoids (the paper's SVM setup).
func NewLinearSVM(seed int64) Classifier {
	m := ml.NewLinearSVM()
	m.Seed = seed
	return m
}

// NewMLP returns a one-hidden-layer perceptron with the given width.
func NewMLP(hidden int, seed int64) Classifier {
	m := ml.NewMLP(hidden)
	m.Seed = seed
	return m
}

// TrainTestSplit deterministically shuffles and splits a labelled dataset.
func TrainTestSplit(X [][]float64, y []int, testFrac float64, seed int64) (trX [][]float64, trY []int, teX [][]float64, teY []int) {
	return ml.TrainTestSplit(X, y, testFrac, seed)
}

// Accuracy measures a classifier's argmax accuracy on a labelled set; use
// it to fill Function.Quality.
func Accuracy(c Classifier, X [][]float64, y []int) float64 {
	return ml.Accuracy(c, X, y)
}
