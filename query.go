package enrichdb

import (
	"time"

	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/shard"
)

// Rows is a materialized query result.
type Rows struct {
	cols []string
	rows []*expr.Row
}

// Columns returns the result's column names.
func (r *Rows) Columns() []string { return r.cols }

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.rows) }

// At returns row i's values.
func (r *Rows) At(i int) []Value { return r.rows[i].Vals }

// TIDs returns the base-tuple ids row i was derived from (empty for
// aggregation results).
func (r *Rows) TIDs(i int) []int64 { return r.rows[i].TIDs }

func wrapRows(schema *expr.RowSchema, rows []*expr.Row) *Rows {
	counts := make(map[string]int, len(schema.Cols))
	for _, c := range schema.Cols {
		counts[c.Name]++
	}
	cols := make([]string, len(schema.Cols))
	for i, c := range schema.Cols {
		// Qualify only ambiguous names (self-joins, shared column names).
		if counts[c.Name] > 1 && c.Alias != "" {
			cols[i] = c.Alias + "." + c.Name
		} else {
			cols[i] = c.Name
		}
	}
	return &Rows{cols: cols, rows: rows}
}

// Result is the outcome of a loose or tight query execution.
type Result struct {
	*Rows
	// Enrichments is the number of enrichment function executions the
	// query caused.
	Enrichments int64
	// FailedEnrichments counts enrichment requests that produced no output
	// (loose design only: per-request errors, panicking models, transport
	// failures). Their derived attributes stay NULL — the paper's "not yet
	// enriched" state — and re-running the query retries exactly that work.
	FailedEnrichments int
	// EnrichErrors samples up to a handful of distinct failure messages when
	// FailedEnrichments > 0.
	EnrichErrors []string
	// UDFInvocations counts UDF calls (tight design only).
	UDFInvocations int64
	// Timing splits the execution cost.
	Timing QueryTiming
	// Profile is the EXPLAIN ANALYZE operator tree when the query ran with
	// QueryObs.Profile set; nil otherwise.
	Profile *QueryProfile
}

// QueryTiming is the per-component cost breakdown of one query.
type QueryTiming struct {
	Probe   time.Duration // loose: probe-query generation and execution
	Enrich  time.Duration // enrichment function execution
	Network time.Duration // loose with a remote server: transfer time
	DBMS    time.Duration // everything executed inside the DBMS
}

// Total sums the components.
func (t QueryTiming) Total() time.Duration {
	return t.Probe + t.Enrich + t.Network + t.DBMS
}

// Query executes a query without any enrichment: derived attributes are
// read as currently determined (NULL when never enriched). Use it to
// inspect state or re-read previously enriched answers for free.
func (db *DB) Query(query string) (*Rows, error) {
	a, err := db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	ctx := engine.NewExecCtx()
	ctx.Adapt = db.runtimeStats
	ctx.NoAdaptive = db.NoAdaptive
	// On a sharded store, eligible single-table shapes fan out across the
	// shards and merge by insertion sequence — byte-identical answer,
	// parallel scan.
	if sc, ok := db.store.(shard.Scatterable); ok {
		rows, schema, hit, err := shard.Scatter(a, sc, ctx)
		if err != nil {
			return nil, err
		}
		if hit {
			db.Telemetry().Counter("shard.scatter_queries").Add(1)
			return wrapRows(schema, rows), nil
		}
	}
	plan, err := engine.Build(a, db.store)
	if err != nil {
		return nil, err
	}
	rows, err := plan.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return wrapRows(plan.Schema(), rows), nil
}

// QueryLoose executes a query with the loosely coupled design (§2.1): probe
// queries find the minimal tuple set, the enrichment server enriches it in
// batch, values are written back, and the query runs.
func (db *DB) QueryLoose(query string) (*Result, error) {
	res, err := db.looseDriver().Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, db.store)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:              wrapRows(plan.Schema(), res.Rows),
		Enrichments:       res.Enrichments,
		FailedEnrichments: res.FailedEnrichments,
		EnrichErrors:      res.EnrichErrors,
		Timing: QueryTiming{
			Probe:   res.Timing.Probe,
			Enrich:  res.Timing.Enrich,
			Network: res.Timing.Network,
			DBMS:    res.Timing.DBMS,
		},
	}, nil
}

// QueryTight executes a query with the tightly coupled design (§2.2): the
// query is rewritten with UDF-wrapped derived conditions and enrichment
// happens lazily inside predicate evaluation.
func (db *DB) QueryTight(query string) (*Result, error) {
	enrichBefore := db.mgr.Counters().EnrichTime
	res, err := db.tightDriver().Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, db.store)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:           wrapRows(plan.Schema(), res.Rows),
		Enrichments:    res.Enrichments,
		UDFInvocations: res.UDFInvocations,
		// Everything runs inside the DBMS in the tight design; split the
		// wall-clock into enrichment-function execution vs the rest so that
		// Total() reflects the measured wall time without double counting.
		Timing: splitTightTiming(res.DBMS, db.mgr.Counters().EnrichTime-enrichBefore),
	}, nil
}

func splitTightTiming(wall, enrich time.Duration) QueryTiming {
	rest := wall - enrich
	if rest < 0 {
		rest = 0
	}
	return QueryTiming{DBMS: rest, Enrich: enrich}
}

// Explain returns the plain (unrewritten) execution plan for a query:
// access paths (scan vs index scan), join strategies, ordering.
func (db *DB) Explain(query string) (string, error) {
	a, err := db.analyzeSQL(query)
	if err != nil {
		return "", err
	}
	plan, err := engine.Build(a, db.store)
	if err != nil {
		return "", err
	}
	return plan.Explain(""), nil
}

// ExplainTight returns the rewritten tight-design plan for a query, showing
// the UDF-wrapped conditions and the join strategies the optimizer chose.
func (db *DB) ExplainTight(query string) (string, error) {
	return db.tightDriver().Explain(query)
}

// ExplainPlan returns the plan-only EXPLAIN (no ANALYZE) for a query: the
// operator tree the adaptive optimizer would run, annotated with estimated
// cardinalities/costs from the cost model and — where this database's
// runtime-statistics store has observed a predicate before — decayed
// observed selectivities. Nothing executes: no scans, no enrichment.
// `EXPLAIN SELECT ...` through the REPL and wire protocol renders the same
// tree.
func (db *DB) ExplainPlan(query string) (string, error) {
	a, err := db.analyzeSQL(query)
	if err != nil {
		return "", err
	}
	st := db.runtimeStats
	if db.NoAdaptive {
		st = nil
	}
	plan, err := engine.BuildOpt(a, db.store, engine.BuildOptions{Stats: st, NoAdaptive: db.NoAdaptive})
	if err != nil {
		return "", err
	}
	return engine.AnnotatedExplain(plan, &engine.CostModel{Store: st}), nil
}
