package enrichdb

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func tenantDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	t.Cleanup(func() { db.Close() })
	err := db.CreateRelation("t", []Column{{Name: "id", Kind: KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", 1, Int(1)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTenantQuotaQueueTimeout: a tenant at its own quota queues and times
// out while another tenant is admitted immediately — the global budget is
// not what blocks it.
func TestTenantQuotaQueueTimeout(t *testing.T) {
	db := tenantDB(t)
	db.SetServing(ServingConfig{
		MaxSessions:  10,
		QueueTimeout: 30 * time.Millisecond,
		Tenants: map[string]TenantConfig{
			"a": {MaxSessions: 1},
		},
	})
	held, err := db.SessionFor("a")
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()

	start := time.Now()
	if _, err := db.SessionFor("a"); !errors.Is(err, ErrSessionTimeout) {
		t.Fatalf("second session for tenant a: got %v, want ErrSessionTimeout", err)
	}
	if wait := time.Since(start); wait < 25*time.Millisecond {
		t.Errorf("rejected after %v — should have queued for the full timeout", wait)
	}

	// Tenant b is unaffected by a's quota.
	other, err := db.SessionFor("b")
	if err != nil {
		t.Fatalf("tenant b blocked by tenant a's quota: %v", err)
	}
	other.Close()

	// Releasing a's session frees its slot for the next a session.
	held.Close()
	again, err := db.SessionFor("a")
	if err != nil {
		t.Fatalf("tenant a after release: %v", err)
	}
	again.Close()
}

// TestPriorityPreemptsQueueOrder: with one global slot and two queued
// tenants, the higher-priority tenant is admitted first even though it
// queued second.
func TestPriorityPreemptsQueueOrder(t *testing.T) {
	db := tenantDB(t)
	db.SetServing(ServingConfig{
		MaxSessions:  1,
		QueueTimeout: 5 * time.Second,
		Tenants: map[string]TenantConfig{
			"lo": {Priority: 0},
			"hi": {Priority: 5},
		},
	})
	held, err := db.SessionFor("lo")
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	admit := func(tenant string) {
		defer wg.Done()
		s, err := db.SessionFor(tenant)
		if err != nil {
			t.Errorf("%s: %v", tenant, err)
			return
		}
		order <- tenant
		// Hold briefly so the grant order is observable, then release the
		// slot for the next waiter.
		time.Sleep(10 * time.Millisecond)
		s.Close()
	}
	wg.Add(2)
	go admit("lo")
	// Make sure lo is queued before hi arrives.
	waitQueued(t, db, 1)
	go admit("hi")
	waitQueued(t, db, 2)

	held.Close()
	wg.Wait()
	if first := <-order; first != "hi" {
		t.Errorf("first admitted waiter = %q, want hi (queued later, higher priority)", first)
	}
	if second := <-order; second != "lo" {
		t.Errorf("second admitted waiter = %q, want lo", second)
	}
}

func waitQueued(t *testing.T, db *DB, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for db.Telemetry().Gauge("serve.sessions_queued").Value() != want {
		if time.Now().After(deadline) {
			t.Fatalf("serve.sessions_queued = %d, want %d",
				db.Telemetry().Gauge("serve.sessions_queued").Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionCounters audits the serve.* counters and per-tenant gauges
// across admits, immediate rejects, and releases.
func TestAdmissionCounters(t *testing.T) {
	db := tenantDB(t)
	db.SetServing(ServingConfig{
		MaxSessions: 2,
		// QueueTimeout zero: reject immediately at capacity.
		Tenants: map[string]TenantConfig{
			"a": {MaxSessions: 1},
		},
	})
	tel := db.Telemetry()

	s1, err := db.SessionFor("a")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.SessionFor("b")
	if err != nil {
		t.Fatal(err)
	}

	// a is at its tenant cap; b's next is over the global cap.
	if _, err := db.SessionFor("a"); !errors.Is(err, ErrSessionTimeout) {
		t.Fatalf("a over tenant cap: got %v", err)
	}
	if _, err := db.SessionFor("b"); !errors.Is(err, ErrSessionTimeout) {
		t.Fatalf("b over global cap: got %v", err)
	}

	if got := tel.Counter("serve.sessions_admitted").Value(); got != 2 {
		t.Errorf("serve.sessions_admitted = %d, want 2", got)
	}
	if got := tel.Counter("serve.sessions_rejected").Value(); got != 2 {
		t.Errorf("serve.sessions_rejected = %d, want 2", got)
	}
	if got := tel.Counter("serve.tenant.a.rejected").Value(); got != 1 {
		t.Errorf("serve.tenant.a.rejected = %d, want 1", got)
	}
	if got := tel.Counter("serve.tenant.b.rejected").Value(); got != 1 {
		t.Errorf("serve.tenant.b.rejected = %d, want 1", got)
	}
	if got := tel.Gauge("serve.tenant.a.active").Value(); got != 1 {
		t.Errorf("serve.tenant.a.active = %d, want 1", got)
	}
	if got := tel.Gauge("serve.sessions_active").Value(); got != 2 {
		t.Errorf("serve.sessions_active = %d, want 2", got)
	}

	s1.Close()
	s2.Close()
	if got := tel.Gauge("serve.sessions_active").Value(); got != 0 {
		t.Errorf("serve.sessions_active after close = %d, want 0", got)
	}
	if got := tel.Gauge("serve.tenant.a.active").Value(); got != 0 {
		t.Errorf("serve.tenant.a.active after close = %d, want 0", got)
	}
	if got := tel.Gauge("serve.tenant.b.active").Value(); got != 0 {
		t.Errorf("serve.tenant.b.active after close = %d, want 0", got)
	}
}

// TestSessionTenant: SessionFor binds the tenant name; Session is the
// anonymous tenant.
func TestSessionTenant(t *testing.T) {
	db := tenantDB(t)
	s, err := db.SessionFor("acme")
	if err != nil {
		t.Fatal(err)
	}
	if s.Tenant() != "acme" {
		t.Errorf("Tenant() = %q, want acme", s.Tenant())
	}
	s.Close()
	anon, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	if anon.Tenant() != "" {
		t.Errorf("anonymous Tenant() = %q, want empty", anon.Tenant())
	}
	anon.Close()
}

// TestQuotaReleaseOnManyChurningSessions hammers admission from many
// goroutines and checks the books balance: every admit has a release, no
// slot is leaked, and at most MaxSessions were ever concurrently active.
func TestQuotaReleaseChurn(t *testing.T) {
	db := tenantDB(t)
	db.SetServing(ServingConfig{
		MaxSessions:  3,
		QueueTimeout: 5 * time.Second,
		Tenants: map[string]TenantConfig{
			"x": {MaxSessions: 2},
			"y": {MaxSessions: 2, Priority: 1},
		},
	})
	var wg sync.WaitGroup
	tenants := []string{"x", "y", "x", "y", ""}
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := db.SessionFor(tenants[i%len(tenants)])
			if err != nil {
				t.Errorf("churn %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
			s.Close()
		}(i)
	}
	wg.Wait()
	tel := db.Telemetry()
	if got := tel.Gauge("serve.sessions_active").Value(); got != 0 {
		t.Errorf("serve.sessions_active after churn = %d, want 0", got)
	}
	if got := tel.Gauge("serve.sessions_queued").Value(); got != 0 {
		t.Errorf("serve.sessions_queued after churn = %d, want 0", got)
	}
	if got := tel.Counter("serve.sessions_admitted").Value(); got != 40 {
		t.Errorf("serve.sessions_admitted = %d, want 40", got)
	}
}
