package enrichdb

import (
	"fmt"
	"strings"
	"testing"
)

// renderExact canonicalizes a result for byte-comparison: column header plus
// every row's values, in order. Equality of these strings is exactly the
// "byte-identical output" contract the sharded store promises.
func renderExact(r *Rows) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Columns(), ","))
	b.WriteByte('\n')
	for i := 0; i < r.Len(); i++ {
		vals := r.At(i)
		parts := make([]string, len(vals))
		for j, v := range vals {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// equivalenceQueries is every query shape the battery compares: the
// scatter-eligible single-table shapes plus everything that must fall back
// to the merged views (ordering, limits, aggregation, grouping, self-join).
var equivalenceQueries = []string{
	"SELECT id, store, day FROM Reviews",
	"SELECT id, day FROM Reviews WHERE day < 10",
	"SELECT id FROM Reviews WHERE store = 'north' AND day >= 3",
	"SELECT id, day FROM Reviews ORDER BY day DESC, id ASC LIMIT 17",
	"SELECT store, count(*), avg(day) FROM Reviews GROUP BY store",
	"SELECT count(*) FROM Reviews WHERE day < 15",
	"SELECT a.id, b.id FROM Reviews a, Reviews b WHERE a.id = b.id AND a.day > 27",
}

// enrichedQuery exercises the enrichment designs (rating is derived).
const enrichedQuery = "SELECT id, rating FROM Reviews WHERE rating = 1"

var shardCounts = []int{1, 2, 4, 8}

func openShardedReviews(t *testing.T, shards int) *DB {
	t.Helper()
	db, err := OpenSharded(ShardConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	reviewDBOn(t, db, true)
	return db
}

// TestShardEquivalencePlain compares every query shape on Open() vs
// OpenSharded(N) for N in {1,2,4,8}, through both the live path (scatter)
// and a snapshot session (merged frozen views).
func TestShardEquivalencePlain(t *testing.T) {
	base, _, _ := buildReviewDB(t)
	want := make([]string, len(equivalenceQueries))
	for i, q := range equivalenceQueries {
		rows, err := base.Query(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want[i] = renderExact(rows)
	}
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openShardedReviews(t, shards)
			defer db.Close()
			sess, err := db.Session()
			if err != nil {
				t.Fatal(err)
			}
			defer sess.Close()
			for i, q := range equivalenceQueries {
				rows, err := db.Query(q)
				if err != nil {
					t.Fatalf("sharded %q: %v", q, err)
				}
				if got := renderExact(rows); got != want[i] {
					t.Errorf("live query %q diverged:\n--- sharded\n%s--- unsharded\n%s", q, got, want[i])
				}
				srows, err := sess.Query(q)
				if err != nil {
					t.Fatalf("session %q: %v", q, err)
				}
				if got := renderExact(srows); got != want[i] {
					t.Errorf("session query %q diverged:\n--- sharded\n%s--- unsharded\n%s", q, got, want[i])
				}
			}
			if got := db.Telemetry().Snapshot().Counters["shard.scatter_queries"]; got == 0 {
				t.Error("no query took the scatter-gather path")
			}
		})
	}
}

// TestShardEquivalenceLooseTight compares the two enrichment designs.
// Enrichment write-backs route through the sharded facade (gen-guarded), so
// the answers and the written-back derived state must match exactly.
func TestShardEquivalenceLooseTight(t *testing.T) {
	base, _, _ := buildReviewDB(t)
	wantLoose, err := base.QueryLoose(enrichedQuery)
	if err != nil {
		t.Fatal(err)
	}
	baseT, _, _ := buildReviewDB(t)
	wantTight, err := baseT.QueryTight(enrichedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if renderExact(wantLoose.Rows) != renderExact(wantTight.Rows) {
		t.Fatal("fixture broken: loose and tight disagree unsharded")
	}
	for _, shards := range shardCounts {
		t.Run(fmt.Sprintf("loose/shards=%d", shards), func(t *testing.T) {
			db := openShardedReviews(t, shards)
			defer db.Close()
			res, err := db.QueryLoose(enrichedQuery)
			if err != nil {
				t.Fatal(err)
			}
			if res.FailedEnrichments != 0 {
				t.Fatalf("%d failed enrichments: %v", res.FailedEnrichments, res.EnrichErrors)
			}
			if got := renderExact(res.Rows); got != renderExact(wantLoose.Rows) {
				t.Errorf("loose diverged:\n--- sharded\n%s--- unsharded\n%s", got, renderExact(wantLoose.Rows))
			}
			// Re-running reads written-back values: still identical, no new work.
			again, err := db.Query(enrichedQuery)
			if err != nil {
				t.Fatal(err)
			}
			if renderExact(again) != renderExact(wantLoose.Rows) {
				t.Error("written-back derived state diverged on re-read")
			}
		})
		t.Run(fmt.Sprintf("tight/shards=%d", shards), func(t *testing.T) {
			db := openShardedReviews(t, shards)
			defer db.Close()
			res, err := db.QueryTight(enrichedQuery)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderExact(res.Rows); got != renderExact(wantTight.Rows) {
				t.Errorf("tight diverged:\n--- sharded\n%s--- unsharded\n%s", got, renderExact(wantTight.Rows))
			}
		})
	}
}

// TestShardEquivalenceProgressive runs the full battery: every strategy
// (including AdaptiveOrdered) × Shards{1,2,4,8} × Workers{1,4}, each
// compared byte-for-byte against the unsharded answer at the same strategy
// and worker width.
func TestShardEquivalenceProgressive(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{
		{"SB-OO", ObjectOrdered},
		{"SB-RO", RandomOrdered},
		{"SB-FO", FunctionOrdered},
		{"Benefit", BenefitOrdered},
		{"Adaptive", AdaptiveOrdered},
	}
	workerWidths := []int{1, 4}
	for _, strat := range strategies {
		for _, workers := range workerWidths {
			opts := ProgressiveOptions{Strategy: strat.s, Seed: 7, Workers: workers}
			base, _, _ := buildReviewDB(t)
			wantRes, err := base.QueryProgressive(enrichedQuery, opts)
			if err != nil {
				t.Fatalf("baseline %s/w%d: %v", strat.name, workers, err)
			}
			want := renderExact(wantRes.Rows)
			for _, shards := range shardCounts {
				name := fmt.Sprintf("%s/workers=%d/shards=%d", strat.name, workers, shards)
				t.Run(name, func(t *testing.T) {
					db := openShardedReviews(t, shards)
					defer db.Close()
					res, err := db.QueryProgressive(enrichedQuery, opts)
					if err != nil {
						t.Fatal(err)
					}
					if got := renderExact(res.Rows); got != want {
						t.Errorf("progressive diverged:\n--- sharded\n%s--- unsharded\n%s", got, want)
					}
				})
			}
		}
	}
}

// TestShardEquivalenceUnderRebalance checks the battery's strongest claim:
// a range split mid-stream (between enrichment and re-read) changes nothing
// observable — order, derived state and query answers survive the move.
func TestShardEquivalenceUnderRebalance(t *testing.T) {
	base, _, _ := buildReviewDB(t)
	db, err := OpenSharded(ShardConfig{Shards: 4, Ranges: []int64{1000}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reviewDBOn(t, db, true)

	wantRes, err := base.QueryLoose(enrichedQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := renderExact(wantRes.Rows)
	res, err := db.QueryLoose(enrichedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderExact(res.Rows); got != want {
		t.Fatalf("pre-split loose diverged:\n%s\nvs\n%s", got, want)
	}
	for _, at := range []int64{50, 100, 150} {
		if _, err := db.SplitShardRange("Reviews", at); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range append(equivalenceQueries, enrichedQuery) {
		wrows, err := base.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		grows, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if renderExact(grows) != renderExact(wrows) {
			t.Errorf("query %d %q diverged after rebalance", i, q)
		}
	}
}
