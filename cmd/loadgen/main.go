// Command loadgen drives the wire serving tier with many concurrent
// connections across mixed tenants and reports latency percentiles and
// throughput. Without -addr it starts an in-process server over the
// deterministic workload database, so `make bench-serve` needs no external
// process; with -addr it hammers a live `enrichdb -listen` server.
//
// Usage:
//
//	loadgen [-conns 1000] [-duration 5s] [-rows 512] [-tenants 4]
//	        [-design loose|tight|plain|mix] [-addr host:port] [-seed 1]
//	        [-sample 8]
//
// Results print as `go test -bench`-shaped lines (pipe through
// cmd/benchjson to persist them in BENCH_serve.json):
//
//	BenchmarkServeP50    8123    412000 ns/op
//	BenchmarkServeP95    8123   1904000 ns/op
//	BenchmarkServeP99    8123   3112000 ns/op
//	BenchmarkServeMean   8123    533000 ns/op
//
// Per-tenant SLO lines follow: client-measured percentiles under
// BenchmarkServeTenant*, and — for the 1-in-N queries sent with the wire
// trace sampling flag (-sample) — the server-reported wall from queries
// whose Profile frame round-tripped, under BenchmarkServeServer*. Client
// and server views side by side separate queueing/network time from
// server-side execution time per tenant.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enrichdb"
	"enrichdb/internal/server"
	"enrichdb/internal/testutil/servedb"
	"enrichdb/internal/wire"
	"enrichdb/internal/wire/client"
)

func main() {
	conns := flag.Int("conns", 1000, "concurrent connections")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	rows := flag.Int("rows", 512, "workload rows (in-process server only)")
	tenants := flag.Int("tenants", 4, "distinct tenants to spread connections across")
	designFlag := flag.String("design", "mix", "query design: loose, tight, plain or mix")
	addr := flag.String("addr", "", "target server (empty = start one in-process)")
	seed := flag.Int64("seed", 1, "workload seed")
	sample := flag.Int("sample", 8, "send every Nth query with the trace sampling flag (0 = never)")
	shards := flag.Int("shards", 1, "shard replicas for the in-process server's store (1 = unsharded)")
	flag.Parse()

	if err := run(*conns, *duration, *rows, *tenants, *designFlag, *addr, *seed, *sample, *shards); err != nil {
		log.Fatal(err)
	}
}

func pickDesign(name string, i int) (wire.Design, error) {
	switch name {
	case "loose":
		return wire.DesignLoose, nil
	case "tight":
		return wire.DesignTight, nil
	case "plain":
		return wire.DesignPlain, nil
	case "mix":
		return []wire.Design{wire.DesignLoose, wire.DesignTight, wire.DesignPlain}[i%3], nil
	default:
		return 0, fmt.Errorf("unknown design %q", name)
	}
}

func run(conns int, duration time.Duration, rows, tenants int, designFlag, addr string, seed int64, sample, nshards int) error {
	if tenants < 1 {
		tenants = 1
	}
	tokens := make(map[string]string, tenants)
	tenantCfg := make(map[string]enrichdb.TenantConfig, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		tokens["tok-"+name] = name
		// Mixed priorities: higher-numbered tenants admit first under
		// contention, exercising the priority queue at scale.
		tenantCfg[name] = enrichdb.TenantConfig{Priority: i % 3}
	}

	var srv *server.Server
	if addr == "" {
		db, err := servedb.NewSharded(rows, seed, nil, nshards)
		if err != nil {
			return err
		}
		defer db.Close()
		db.SetServing(enrichdb.ServingConfig{
			QueueTimeout: 30 * time.Second,
			Tenants:      tenantCfg,
		})
		srv, err = server.New(server.Config{DB: db, Tokens: tokens})
		if err != nil {
			return err
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr().String()
		fmt.Fprintf(os.Stderr, "loadgen: in-process server on %s (%d rows, seed %d, %d shard(s))\n",
			addr, rows, seed, db.Shards())
	}

	// Connect everyone first so the measurement window only sees steady
	// state, not the dial ramp.
	clients := make([]*client.Client, conns)
	var dialWG sync.WaitGroup
	var dialErrs atomic.Int64
	for i := range clients {
		dialWG.Add(1)
		go func(i int) {
			defer dialWG.Done()
			c, err := client.Dial(addr, client.Options{
				Token:       fmt.Sprintf("tok-tenant-%d", i%tenants),
				Client:      fmt.Sprintf("loadgen-%d", i),
				DialTimeout: 30 * time.Second,
			})
			if err != nil {
				dialErrs.Add(1)
				return
			}
			clients[i] = c
		}(i)
	}
	dialWG.Wait()
	if n := dialErrs.Load(); n > 0 {
		return fmt.Errorf("loadgen: %d/%d connections failed to dial", n, conns)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d connections up across %d tenants\n", conns, tenants)

	type shard struct {
		lat      []time.Duration // client-measured wall per query
		srvLat   []time.Duration // server-reported wall on sampled queries
		profiles int             // Profile frames received
		errs     int
	}
	shards := make([]shard, conns)
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			defer c.Close()
			sh := &shards[i]
			for q := 0; ; q++ {
				if ctx.Err() != nil {
					return
				}
				design, err := pickDesign(designFlag, i+q)
				if err != nil {
					sh.errs++
					return
				}
				sampled := sample > 0 && q%sample == 0
				t0 := time.Now()
				var res *client.Result
				if sampled {
					res, err = c.QueryTrace(ctx, design, servedb.SampleQuery(i+q),
						wire.TraceContext{Sampled: true}, nil, nil)
				} else {
					res, err = c.Query(ctx, design, servedb.SampleQuery(i+q))
				}
				if err != nil {
					if ctx.Err() == nil {
						sh.errs++
					}
					return
				}
				sh.lat = append(sh.lat, time.Since(t0))
				if sampled && res.Profile != nil {
					// The Profile frame confirms the server sampled this
					// query; res.Wall is its server-measured execution time.
					sh.profiles++
					sh.srvLat = append(sh.srvLat, res.Wall)
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	tenantLat := make([][]time.Duration, tenants)
	tenantSrv := make([][]time.Duration, tenants)
	errs, profiles := 0, 0
	for i := range shards {
		t := i % tenants
		all = append(all, shards[i].lat...)
		tenantLat[t] = append(tenantLat[t], shards[i].lat...)
		tenantSrv[t] = append(tenantSrv[t], shards[i].srvLat...)
		profiles += shards[i].profiles
		errs += shards[i].errs
	}
	if len(all) == 0 {
		return fmt.Errorf("loadgen: no queries completed (%d errors)", errs)
	}
	pctOf := func(sorted []time.Duration, p float64) time.Duration {
		return sorted[int(p*float64(len(sorted)-1))]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return pctOf(all, p) }
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	qps := float64(len(all)) / elapsed.Seconds()

	fmt.Fprintf(os.Stderr,
		"loadgen: %d queries over %d conns in %v — %.0f qps, %d errors, %d sampled profiles\np50 %v  p95 %v  p99 %v  mean %v  max %v\n",
		len(all), conns, elapsed.Round(time.Millisecond), qps, errs, profiles,
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), (sum / time.Duration(len(all))).Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond))

	// go test -bench shaped lines for cmd/benchjson; the iteration count is
	// the completed-query count, ns/op carries the statistic.
	n := len(all)
	fmt.Printf("BenchmarkServeP50 \t%d\t%d ns/op\n", n, pct(0.50).Nanoseconds())
	fmt.Printf("BenchmarkServeP95 \t%d\t%d ns/op\n", n, pct(0.95).Nanoseconds())
	fmt.Printf("BenchmarkServeP99 \t%d\t%d ns/op\n", n, pct(0.99).Nanoseconds())
	fmt.Printf("BenchmarkServeMean \t%d\t%d ns/op\n", n, (sum / time.Duration(n)).Nanoseconds())
	// Mean inter-completion gap: 1e9/qps — throughput in ns/op clothing.
	fmt.Printf("BenchmarkServeThroughput \t%d\t%d ns/op\n", n, int64(float64(elapsed.Nanoseconds())/float64(n)))

	// Per-tenant SLO view: client-measured latency (includes admission
	// queueing and the network) next to the server-reported execution wall
	// from the sampled queries' Profile frames.
	for t := 0; t < tenants; t++ {
		// No "-<digits>" suffix: benchjson would strip it as a GOMAXPROCS
		// suffix and collapse every tenant into one key.
		name := fmt.Sprintf("tenant%d", t)
		if lat := tenantLat[t]; len(lat) > 0 {
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			for _, p := range []struct {
				tag string
				q   float64
			}{{"P50", 0.50}, {"P95", 0.95}, {"P99", 0.99}} {
				fmt.Printf("BenchmarkServeTenant%s/%s \t%d\t%d ns/op\n",
					p.tag, name, len(lat), pctOf(lat, p.q).Nanoseconds())
			}
		}
		if srv := tenantSrv[t]; len(srv) > 0 {
			sort.Slice(srv, func(i, j int) bool { return srv[i] < srv[j] })
			for _, p := range []struct {
				tag string
				q   float64
			}{{"P50", 0.50}, {"P95", 0.95}, {"P99", 0.99}} {
				fmt.Printf("BenchmarkServeServer%s/%s \t%d\t%d ns/op\n",
					p.tag, name, len(srv), pctOf(srv, p.q).Nanoseconds())
			}
		}
	}

	if errs > 0 {
		return fmt.Errorf("loadgen: %d queries failed", errs)
	}
	return nil
}
