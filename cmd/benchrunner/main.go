// Command benchrunner regenerates the paper's evaluation tables and figures
// (§5) and prints them in paper-shaped rows. See EXPERIMENTS.md for the
// mapping and the expected comparative shapes.
//
// Usage:
//
//	benchrunner [-exp all|1a|1b|1c|1d|1e|2|3|4|5|ablation|adaptive|det|ingest] [-scale small|medium]
//	            [-metrics] [-trace file]
//
// -metrics appends a uniform telemetry counter table per experiment (the
// merged snapshot of every database the experiment built); -trace writes one
// JSON span per pipeline phase to the given file (pretty-print with
// cmd/tracefmt).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"enrichdb/internal/bench"
	"enrichdb/internal/telemetry"
)

// envs collects every database the current experiment built, so its merged
// telemetry snapshot can be printed as one uniform counter table.
var envs []*bench.Env

// tracer is shared by all envs when -trace is set.
var tracer *telemetry.Tracer

var showMetrics bool

func main() {
	expFlag := flag.String("exp", "all", "experiment id: all, 1a, 1b, 1c, 1d, 1e, 1f, 2, 3, 4, 5, ablation, adaptive, ingest")
	scaleFlag := flag.String("scale", "small", "dataset scale: small or medium")
	metricsFlag := flag.Bool("metrics", true, "print a merged telemetry counter table per experiment")
	traceFlag := flag.String("trace", "", "write JSONL spans to this file")
	flag.Parse()
	showMetrics = *metricsFlag

	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tracer = telemetry.NewTracer(telemetry.NewJSONLSink(f))
	}
	bench.OnEnv = func(e *bench.Env) {
		e.Tracer = tracer
		envs = append(envs, e)
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.Small()
	case "medium":
		scale = bench.Medium()
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}

	want := func(id string) bool { return *expFlag == "all" || *expFlag == id }
	ran := false
	start := time.Now()

	if want("1a") {
		run("Exp 1a", func() ([]*bench.Table, error) {
			t, err := bench.Exp1aNumEnrichments(scale)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("1b") {
		run("Exp 1b", func() ([]*bench.Table, error) {
			t, err := bench.Exp1bSelectivity(scale)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("1c") {
		run("Exp 1c", func() ([]*bench.Table, error) {
			t, _, err := bench.Exp1cCumulative(scale, 15)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("1d") {
		run("Exp 1d", func() ([]*bench.Table, error) {
			t, err := bench.Exp1dLatency(scale, 3)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("1e") {
		run("Exp 1e", func() ([]*bench.Table, error) {
			t, err := bench.Exp1eTimeSplit(scale, 2*time.Millisecond)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("1f") {
		run("Exp 1f", func() ([]*bench.Table, error) {
			t, err := bench.Exp1fWorkers(scale, []int{1, 2, 4, 8})
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("2") {
		run("Exp 2", func() ([]*bench.Table, error) {
			fig7, fig6, err := bench.Exp2Progressiveness(scale)
			return []*bench.Table{fig7, fig6}, err
		})
		ran = true
	}
	if want("3") {
		run("Exp 3", func() ([]*bench.Table, error) {
			t, err := bench.Exp3PlanStrategies(scale)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("4") {
		run("Exp 4", func() ([]*bench.Table, error) {
			t, err := bench.Exp4Overhead(scale)
			if err != nil {
				return nil, err
			}
			w, err := bench.Exp4WorkersOverhead(scale, []int{1, 2, 4, 8})
			return []*bench.Table{t, w}, err
		})
		ran = true
	}
	if want("5") {
		run("Exp 5", func() ([]*bench.Table, error) {
			sizes, cutoff, err := bench.Exp5Storage(scale)
			return []*bench.Table{sizes, cutoff}, err
		})
		ran = true
	}
	if want("ablation") {
		run("Ablations", func() ([]*bench.Table, error) {
			probe, err := bench.AblationProbe(scale)
			if err != nil {
				return nil, err
			}
			opt, err := bench.AblationOptimizer(scale)
			if err != nil {
				return nil, err
			}
			batch, err := bench.AblationBatching(scale, 100*time.Microsecond)
			if err != nil {
				return nil, err
			}
			return []*bench.Table{probe, opt, batch}, nil
		})
		ran = true
	}
	if want("adaptive") {
		run("Adaptive optimization", func() ([]*bench.Table, error) {
			t, err := bench.ExpAdaptive(scale)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("det") {
		run("Determinizer comparison", func() ([]*bench.Table, error) {
			t, err := bench.DeterminizerComparison(scale)
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if want("ingest") {
		run("Ingestion rate", func() ([]*bench.Table, error) {
			t, err := bench.IngestionRate(500, []time.Duration{
				10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond,
			})
			return []*bench.Table{t}, err
		})
		ran = true
	}
	if !ran {
		log.Fatalf("unknown experiment %q; use all, 1a, 1b, 1c, 1d, 1e, 2, 3, 4, 5, ablation, adaptive, det or ingest", *expFlag)
	}
	fmt.Printf("done in %s (scale %s)\n", time.Since(start).Round(time.Millisecond), scale.Name)
}

func run(name string, fn func() ([]*bench.Table, error)) {
	envs = envs[:0]
	fmt.Println(strings.Repeat("-", 72))
	fmt.Printf("%s\n\n", name)
	tables, err := fn()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
	if showMetrics && len(envs) > 0 {
		// One uniform counter table per experiment: the merged snapshot of
		// every database instance the experiment built.
		var merged telemetry.Snapshot
		for _, e := range envs {
			merged.Merge(e.Telemetry().Snapshot())
		}
		fmt.Printf("telemetry (%d envs):\n%s\n", len(envs), indent(merged.String(), "  "))
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
