// Command enrichserver runs a standalone enrichment server for the loose
// design: it trains the demo enrichment functions over the same seeded
// synthetic distribution as its clients and serves EnrichBatch RPCs over
// TCP. A client built from the same seed and sizes holds identical models,
// emulating the paper's model deployment on a separate AWS server.
//
// Usage:
//
//	enrichserver [-addr 127.0.0.1:7707] [-seed 1] [-tweets N] [-images N]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"enrichdb/internal/bench"
	"enrichdb/internal/dataset"
	"enrichdb/internal/loose/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address")
	seed := flag.Int64("seed", 1, "dataset/model seed (must match the client)")
	tweets := flag.Int("tweets", 2000, "TweetData size (must match the client)")
	images := flag.Int("images", 800, "MultiPie size (must match the client)")
	flag.Parse()

	scale := bench.Small()
	scale.Seed = *seed
	scale.Tweets = *tweets
	scale.Images = *images
	log.Printf("training enrichment functions (seed %d)...", *seed)
	env, err := bench.NewEnv(scale, dataset.SingleFunctionSpecs())
	if err != nil {
		log.Fatal(err)
	}

	srv, bound, err := remote.Serve(*addr, env.Mgr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("enrichment server listening on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("shutting down")
}
