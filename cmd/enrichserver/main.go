// Command enrichserver runs a standalone enrichment server for the loose
// design: it trains the demo enrichment functions over the same seeded
// synthetic distribution as its clients and serves EnrichBatch RPCs over
// TCP. A client built from the same seed and sizes holds identical models,
// emulating the paper's model deployment on a separate AWS server.
//
// Usage:
//
//	enrichserver [-addr 127.0.0.1:7707] [-seed 1] [-tweets N] [-images N]
//	             [-workers W] [-maxconns N] [-drain 5s]
//
// The server shuts down cleanly on SIGINT or SIGTERM (the normal container
// stop signal): it stops accepting connections, drains in-flight batches up
// to -drain, then exits.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enrichdb/internal/bench"
	"enrichdb/internal/dataset"
	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address")
	seed := flag.Int64("seed", 1, "dataset/model seed (must match the client)")
	tweets := flag.Int("tweets", 2000, "TweetData size (must match the client)")
	images := flag.Int("images", 800, "MultiPie size (must match the client)")
	workers := flag.Int("workers", 0, "parallel enrichment workers (0 sequential, -1 GOMAXPROCS)")
	maxConns := flag.Int("maxconns", 0, "max concurrent client connections (0 unlimited)")
	drain := flag.Duration("drain", remote.DefaultDrainTimeout, "shutdown drain timeout for in-flight batches")
	flag.Parse()

	scale := bench.Small()
	scale.Seed = *seed
	scale.Tweets = *tweets
	scale.Images = *images
	log.Printf("training enrichment functions (seed %d)...", *seed)
	env, err := bench.NewEnv(scale, dataset.SingleFunctionSpecs())
	if err != nil {
		log.Fatal(err)
	}

	enricher := &loose.LocalEnricher{Mgr: env.Mgr, Workers: *workers}
	srv, bound, err := remote.ServeEnricher(*addr, enricher, remote.ServerOptions{
		MaxConns:     *maxConns,
		DrainTimeout: *drain,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("enrichment server listening on %s", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v; draining (up to %v) and shutting down", s, *drain)
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	log.Printf("shut down in %v", time.Since(t0).Round(time.Millisecond))
}
