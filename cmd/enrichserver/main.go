// Command enrichserver runs a standalone enrichment server for the loose
// design: it trains the demo enrichment functions over the same seeded
// synthetic distribution as its clients and serves EnrichBatch RPCs over
// TCP. A client built from the same seed and sizes holds identical models,
// emulating the paper's model deployment on a separate AWS server.
//
// Usage:
//
//	enrichserver [-addr 127.0.0.1:7707] [-seed 1] [-tweets N] [-images N]
//	             [-workers W] [-maxconns N] [-drain 5s] [-metrics addr]
//
// -metrics starts an HTTP observability endpoint on the given address:
// /metrics serves the server's telemetry snapshot (JSON, or plain text with
// ?format=text) and /debug/pprof/ exposes the standard Go profiles.
//
// The server shuts down cleanly on SIGINT or SIGTERM (the normal container
// stop signal): it stops accepting connections, drains in-flight batches up
// to -drain, then exits.
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enrichdb/internal/bench"
	"enrichdb/internal/dataset"
	"enrichdb/internal/loose"
	"enrichdb/internal/loose/remote"
	"enrichdb/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address")
	seed := flag.Int64("seed", 1, "dataset/model seed (must match the client)")
	tweets := flag.Int("tweets", 2000, "TweetData size (must match the client)")
	images := flag.Int("images", 800, "MultiPie size (must match the client)")
	workers := flag.Int("workers", 0, "parallel enrichment workers (0 sequential, -1 GOMAXPROCS)")
	maxConns := flag.Int("maxconns", 0, "max concurrent client connections (0 unlimited)")
	drain := flag.Duration("drain", remote.DefaultDrainTimeout, "shutdown drain timeout for in-flight batches")
	metricsAddr := flag.String("metrics", "", "HTTP address for /metrics and /debug/pprof (empty disables)")
	flag.Parse()

	scale := bench.Small()
	scale.Seed = *seed
	scale.Tweets = *tweets
	scale.Images = *images
	log.Printf("training enrichment functions (seed %d)...", *seed)
	env, err := bench.NewEnv(scale, dataset.SingleFunctionSpecs())
	if err != nil {
		log.Fatal(err)
	}

	enricher := &loose.LocalEnricher{Mgr: env.Mgr, Workers: *workers}
	srv, bound, err := remote.ServeEnricher(*addr, enricher, remote.ServerOptions{
		MaxConns:     *maxConns,
		DrainTimeout: *drain,
		Telemetry:    env.Mgr.Telemetry(),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("enrichment server listening on %s", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(env.Mgr.Telemetry()))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("metrics endpoint on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("metrics endpoint: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v; draining (up to %v) and shutting down", s, *drain)
	t0 := time.Now()
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	log.Printf("shut down in %v", time.Since(t0).Round(time.Millisecond))
}
