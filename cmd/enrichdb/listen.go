package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enrichdb"
	"enrichdb/internal/server"
	"enrichdb/internal/testutil/servedb"
)

// runListen serves the deterministic workload database over the wire
// protocol until SIGINT/SIGTERM, then drains gracefully: the listener
// closes, in-flight queries finish (bounded by the drain timeout), and
// connected clients get a Drain notice.
func runListen(addr string, rows int, seed int64, maxSessions int, timeout time.Duration, tokens string) error {
	db, err := servedb.New(rows, seed, nil)
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetServing(enrichdb.ServingConfig{
		MaxSessions:  maxSessions,
		QueueTimeout: timeout,
	})

	cfg := server.Config{
		DB: db,
		Progressive: enrichdb.ProgressiveOptions{
			EpochBudget: 5 * time.Millisecond,
			MaxEpochs:   200,
			Seed:        seed,
		},
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if tokens != "" {
		cfg.Tokens = make(map[string]string)
		for _, pair := range strings.Split(tokens, ",") {
			tok, tenant, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad -tokens entry %q (want token=tenant)", pair)
			}
			cfg.Tokens[tok] = tenant
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := s.Listen(addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s (%d rows, seed %d) on %s; SIGTERM drains\n",
		servedb.Relation, rows, seed, s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "%v: draining...\n", got)
	s.Drain(fmt.Sprintf("server shutting down (%v)", got))
	fmt.Fprintln(os.Stderr, "drained.")
	fmt.Print(db.Telemetry().Snapshot().String())
	return nil
}
