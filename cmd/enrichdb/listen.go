package main

import (
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enrichdb"
	"enrichdb/internal/server"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/testutil/servedb"
)

// listenOpts are the network-mode knobs beyond the address.
type listenOpts struct {
	rows          int
	seed          int64
	maxSessions   int
	timeout       time.Duration
	tokens        string
	traceFile     string        // JSONL span trace (one trace ID per query)
	sample        int           // sample every Nth query per connection
	slowLog       string        // slow-query JSONL log file
	slowThreshold time.Duration // slow-query threshold
	httpAddr      string        // /metrics + /statusz address
}

// runListen serves the deterministic workload database over the wire
// protocol until SIGINT/SIGTERM, then drains gracefully: the listener
// closes, in-flight queries finish (bounded by the drain timeout), and
// connected clients get a Drain notice.
func runListen(addr string, o listenOpts) error {
	db, err := servedb.New(o.rows, o.seed, nil)
	if err != nil {
		return err
	}
	defer db.Close()
	db.SetServing(enrichdb.ServingConfig{
		MaxSessions:  o.maxSessions,
		QueueTimeout: o.timeout,
	})

	cfg := server.Config{
		DB: db,
		Progressive: enrichdb.ProgressiveOptions{
			EpochBudget: 5 * time.Millisecond,
			MaxEpochs:   200,
			Seed:        o.seed,
		},
		SampleEvery: o.sample,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Tracer = telemetry.NewTracer(telemetry.NewJSONLSink(f))
		fmt.Fprintf(os.Stderr, "tracing spans to %s (filter one query: tracefmt -query <id> %s)\n",
			o.traceFile, o.traceFile)
	}
	if o.slowLog != "" {
		f, err := os.Create(o.slowLog)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.SlowQueryLog = f
		cfg.SlowQueryThreshold = o.slowThreshold
		fmt.Fprintf(os.Stderr, "logging queries over %v to %s\n", o.slowThreshold, o.slowLog)
	}
	if o.tokens != "" {
		cfg.Tokens = make(map[string]string)
		for _, pair := range strings.Split(o.tokens, ",") {
			tok, tenant, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("bad -tokens entry %q (want token=tenant)", pair)
			}
			cfg.Tokens[tok] = tenant
		}
	}
	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	if err := s.Listen(addr); err != nil {
		return err
	}
	if o.httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Handler(db.Telemetry()))
		mux.Handle("/statusz", s.StatusHandler())
		go func() {
			if err := http.ListenAndServe(o.httpAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "http server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics, status on http://%s/statusz\n",
			o.httpAddr, o.httpAddr)
	}
	fmt.Fprintf(os.Stderr, "serving %s (%d rows, seed %d) on %s; SIGTERM drains\n",
		servedb.Relation, o.rows, o.seed, s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "%v: draining...\n", got)
	s.Drain(fmt.Sprintf("server shutting down (%v)", got))
	fmt.Fprintln(os.Stderr, "drained.")
	fmt.Print(db.Telemetry().Snapshot().String())
	return nil
}
