// Command enrichdb is an interactive query runner over a generated demo
// database (the paper's TweetData/MultiPie/State schemas with trained
// enrichment functions). Queries execute under the chosen design and print
// rows plus enrichment statistics.
//
// Usage:
//
//	enrichdb [-design loose|tight|plain] [-tweets N] [-images N] [-q "SELECT ..."]
//	         [-trace file] [-metrics]
//
// -trace writes one JSON span per pipeline phase to the given file (use
// cmd/tracefmt to pretty-print it); -metrics prints the telemetry snapshot
// on exit. Without -q it reads queries from stdin, one per line. Special
// inputs: ".help", ".stats", ".metrics", ".explain <query>",
// ".design <name>", ".quit".
//
// Serving mode:
//
//	enrichdb -serve [-writers N] [-serve-sessions M] [-max-sessions K]
//	         [-session-timeout D] [-seed S] [-seconds T]
//
// -serve runs the concurrent serving workload instead of the REPL: N
// writers commit against the database while M session goroutines run
// snapshot-isolated loose/tight/progressive/plain queries, under admission
// control when -max-sessions is set. Every iteration is verified by the
// deterministic harness oracles (serial-replay equivalence and the
// monotone-enrichment invariant) and reports its seed; a reported seed
// reproduces the exact run.
//
// Network mode:
//
//	enrichdb -listen :7070 [-rows N] [-seed S] [-max-sessions K]
//	         [-session-timeout D] [-tokens tok=tenant,...]
//	         [-trace file] [-sample N] [-slowlog file] [-slow-threshold D]
//	         [-http :8080]
//
// -listen serves the deterministic workload database over the binary wire
// protocol (internal/wire): clients handshake with a tenant token, run
// queries under any design, and stream columnar result batches. SIGTERM or
// SIGINT drains gracefully — in-flight queries finish, connected clients
// get a Drain notice — then the telemetry snapshot prints.
//
// Observability in network mode: -trace writes every sampled query's span
// chain (handshake through result stream) as JSONL; -sample N samples every
// Nth query per connection on top of client-requested sampling; -slowlog
// plus -slow-threshold appends a JSON record (with the operator profile)
// for every query slower than the threshold; -http serves /metrics (with
// p50/p95/p99 quantile lines) and /statusz (live sessions, in-flight
// queries, per-tenant admission state). `EXPLAIN ANALYZE <query>` works
// both in the REPL and over the wire.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"enrichdb/internal/bench"
	"enrichdb/internal/dataset"
	"enrichdb/internal/engine"
	"enrichdb/internal/expr"
	"enrichdb/internal/harness"
	"enrichdb/internal/sqlparser"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/tight"
)

func main() {
	design := flag.String("design", "tight", "execution design: loose, tight or plain")
	tweets := flag.Int("tweets", 2000, "TweetData size")
	images := flag.Int("images", 800, "MultiPie size")
	query := flag.String("q", "", "single query to run (otherwise read stdin)")
	traceFile := flag.String("trace", "", "write JSONL spans to this file")
	metrics := flag.Bool("metrics", false, "print the telemetry snapshot on exit")
	serve := flag.Bool("serve", false, "run the verified concurrent serving workload instead of the REPL")
	listen := flag.String("listen", "", "serve the wire protocol on this address (e.g. :7070) instead of the REPL")
	rows := flag.Int("rows", 2000, "listen mode: workload rows to seed")
	tokens := flag.String("tokens", "", "listen mode: comma-separated token=tenant auth pairs (empty = any token)")
	sample := flag.Int("sample", 0, "listen mode: trace every Nth query per connection (0 = only client-requested)")
	slowLog := flag.String("slowlog", "", "listen mode: append slow-query JSON records to this file")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "listen mode: slow-query threshold for -slowlog")
	httpAddr := flag.String("http", "", "listen mode: serve /metrics and /statusz on this address")
	writers := flag.Int("writers", 4, "serving mode: concurrent writers")
	serveSessions := flag.Int("serve-sessions", 4, "serving mode: concurrent query sessions")
	maxSessions := flag.Int("max-sessions", 3, "serving mode: admission limit (0 = unlimited)")
	sessionTimeout := flag.Duration("session-timeout", 5*time.Second, "serving mode: admission queue timeout")
	seed := flag.Int64("seed", 1, "serving mode: workload seed (each iteration increments it)")
	seconds := flag.Int("seconds", 5, "serving mode: how long to iterate")
	flag.Parse()

	if *listen != "" {
		err := runListen(*listen, listenOpts{
			rows: *rows, seed: *seed, maxSessions: *maxSessions,
			timeout: *sessionTimeout, tokens: *tokens,
			traceFile: *traceFile, sample: *sample,
			slowLog: *slowLog, slowThreshold: *slowThreshold,
			httpAddr: *httpAddr,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serve {
		if err := runServe(*writers, *serveSessions, *maxSessions, *sessionTimeout, *seed, *seconds); err != nil {
			log.Fatal(err)
		}
		return
	}

	scale := bench.Small()
	scale.Tweets = *tweets
	scale.Images = *images
	fmt.Fprintf(os.Stderr, "generating %d tweets, %d images and training enrichment functions...\n",
		*tweets, *images)
	env, err := bench.NewEnv(scale, dataset.SingleFunctionSpecs())
	if err != nil {
		log.Fatal(err)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		env.Tracer = telemetry.NewTracer(telemetry.NewJSONLSink(f))
		fmt.Fprintf(os.Stderr, "tracing spans to %s\n", *traceFile)
	}
	if *metrics {
		defer func() { fmt.Print(env.Telemetry().Snapshot().String()) }()
	}
	fmt.Fprintf(os.Stderr, "ready. relations: TweetData(topic, sentiment derived), MultiPie(gender, expression derived), State\n")

	r := &runner{env: env, design: *design}
	if *query != "" {
		if err := r.exec(*query); err != nil {
			log.Fatal(err)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if done := r.command(line); done {
				return
			}
		}
		fmt.Print("> ")
	}
}

// runServe iterates the deterministic serving workload for roughly the given
// number of seconds, bumping the seed each round so every iteration explores
// a different interleaving. Any oracle violation aborts with the failing
// seed and a minimized op trace.
func runServe(writers, sessions, maxSessions int, timeout time.Duration, seed int64, seconds int) error {
	fmt.Fprintf(os.Stderr,
		"serving workload: %d writers x %d sessions (admission %d, timeout %v), seed %d, %ds\n",
		writers, sessions, maxSessions, timeout, seed, seconds)
	deadline := time.Now().Add(time.Duration(seconds) * time.Second)
	iters := 0
	for time.Now().Before(deadline) {
		cfg := harness.Config{
			Seed:         seed,
			Writers:      writers,
			Sessions:     sessions,
			OpsPerWriter: 30,
			MaxSessions:  maxSessions,
			QueueTimeout: timeout,
		}
		rep, err := harness.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("seed %d: %d commits, %d queries (%d replayed, %d progressive), %d enrichments, %d stale drops, %d rejected, %d images observed\n",
			rep.Seed, rep.Commits, rep.Queries, rep.Replayed, rep.Progressive,
			rep.Enrichments, rep.StaleDrops, rep.Rejected, rep.ObservedImages)
		seed++
		iters++
	}
	fmt.Fprintf(os.Stderr, "%d iterations, all verified by serial replay and the monotone oracle\n", iters)
	return nil
}

type runner struct {
	env    *bench.Env
	design string
}

func (r *runner) command(line string) (quit bool) {
	switch {
	case line == ".quit" || line == ".exit":
		return true
	case line == ".help":
		fmt.Println("enter a SELECT query (prefix with EXPLAIN for the annotated plan without")
		fmt.Println("executing, or EXPLAIN ANALYZE for an operator profile of a real run),")
		fmt.Println("or: .design loose|tight|plain, .explain <query>, .paper, .stats, .metrics, .quit")
	case line == ".paper":
		// Run the paper's nine query templates under the current design.
		scale := bench.Small()
		scale.Tweets = r.env.Data.Config.Tweets
		scale.Images = r.env.Data.Config.Images
		scale.TopicDomain = r.env.Data.Config.TopicDomain
		for qi, q := range scale.Queries() {
			fmt.Printf("-- Q%d: %s\n", qi+1, q)
			if err := r.exec(q); err != nil {
				fmt.Println("error:", err)
			}
		}
	case line == ".stats":
		c := r.env.Mgr.Counters()
		fmt.Printf("enrichments=%d skipped=%d re-executions=%d state=%dB enrich-time=%v\n",
			c.Enrichments, c.Skipped, c.ReExecutions, r.env.Mgr.StateSizeBytes(), c.EnrichTime.Round(time.Millisecond))
	case line == ".metrics":
		fmt.Print(r.env.Telemetry().Snapshot().String())
	case strings.HasPrefix(line, ".design "):
		d := strings.TrimSpace(strings.TrimPrefix(line, ".design "))
		if d != "loose" && d != "tight" && d != "plain" {
			fmt.Println("designs: loose, tight, plain")
		} else {
			r.design = d
			fmt.Printf("design = %s\n", d)
		}
	case strings.HasPrefix(line, ".explain "):
		q := strings.TrimPrefix(line, ".explain ")
		plan, err := r.env.TightDriver().Explain(q)
		if err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Print(plan)
		}
	default:
		if err := r.exec(line); err != nil {
			fmt.Println("error:", err)
		}
	}
	return false
}

func (r *runner) exec(q string) error {
	// EXPLAIN ANALYZE runs the inner SELECT with an operator profiler and
	// prints the profile tree instead of the rows. Bare EXPLAIN renders the
	// annotated plan — estimated cardinalities plus any observed
	// selectivities from the env's stats store — without executing anything.
	var prof *engine.Profiler
	if st, err := sqlparser.ParseStatement(q); err == nil {
		if st.ExplainPlan {
			return r.explainPlan(st.Select.String())
		}
		if st.ExplainAnalyze {
			prof = engine.NewProfiler()
			q = st.Select.String()
		}
	}

	start := time.Now()
	var rows []*expr.Row
	var enrichments int64
	switch r.design {
	case "loose":
		d := r.env.LooseDriver()
		d.Prof = prof
		res, err := d.Execute(q)
		if err != nil {
			return err
		}
		rows, enrichments = res.Rows, res.Enrichments
	case "tight":
		d := r.env.TightDriver()
		d.Prof = prof
		res, err := d.Execute(q)
		if err != nil {
			return err
		}
		rows, enrichments = res.Rows, res.Enrichments
	case "plain":
		var err error
		rows, err = r.execPlain(q, prof)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown design %q", r.design)
	}
	elapsed := time.Since(start)

	if prof != nil {
		for _, root := range prof.Roots() {
			fmt.Print(engine.FormatProfile(root))
		}
		fmt.Printf("-- %d rows, %d enrichments, %v (%s design)\n",
			len(rows), enrichments, elapsed.Round(time.Millisecond), r.design)
		return nil
	}

	limit := 20
	for i, row := range rows {
		if i == limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-limit)
			break
		}
		cells := make([]string, len(row.Vals))
		for ci, v := range row.Vals {
			cells[ci] = v.String()
			if len(cells[ci]) > 24 {
				cells[ci] = cells[ci][:21] + "..."
			}
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("-- %d rows, %d enrichments, %v (%s design)\n",
		len(rows), enrichments, elapsed.Round(time.Millisecond), r.design)
	return nil
}

// explainPlan renders the plan-only EXPLAIN for the current design: the
// operator tree the optimizer would run (the tight design's UDF-rewritten
// tree when that design is active), annotated with estimated rows/costs and
// observed selectivities from the env's runtime-statistics store. Nothing
// executes — no scans, no enrichment.
func (r *runner) explainPlan(q string) error {
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		return err
	}
	a, err := engine.Analyze(stmt, r.env.Data.DB.Catalog())
	if err != nil {
		return err
	}
	if r.design == "tight" {
		if a, err = tight.RewriteAnalysis(a); err != nil {
			return err
		}
	}
	plan, err := engine.BuildOpt(a, r.env.Data.DB, engine.BuildOptions{Stats: r.env.Stats})
	if err != nil {
		return err
	}
	fmt.Print(engine.AnnotatedExplain(plan, &engine.CostModel{Store: r.env.Stats}))
	return nil
}

// execPlain is Env.ExecutePlain with an optional profiler attached.
func (r *runner) execPlain(query string, prof *engine.Profiler) ([]*expr.Row, error) {
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		return nil, err
	}
	a, err := engine.Analyze(stmt, r.env.Data.DB.Catalog())
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, r.env.Data.DB)
	if err != nil {
		return nil, err
	}
	ctx := engine.NewExecCtx()
	ctx.Prof = prof
	return plan.Execute(ctx)
}
