// Command tracefmt pretty-prints a JSONL span trace produced by the -trace
// flag of cmd/enrichdb, cmd/benchrunner or the examples: spans are grouped
// by epoch, worker-tagged, and annotated with their attributes. Unknown
// JSON keys (future span fields) are ignored, so old tracefmt binaries
// read new traces.
//
// Usage:
//
//	tracefmt trace.jsonl              # or: tracefmt < trace.jsonl
//	tracefmt -query 1a2b3c... trace.jsonl   # one query's spans as a tree
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"enrichdb/internal/telemetry"
)

func main() {
	query := flag.String("query", "", "print only spans with this trace ID (hex), as an indented start-ordered tree")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracefmt [-query <traceid>] [trace.jsonl]")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	var err error
	if *query != "" {
		err = telemetry.FormatQueryTrace(in, os.Stdout, *query)
	} else {
		err = telemetry.FormatSpans(in, os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}
