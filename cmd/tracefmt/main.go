// Command tracefmt pretty-prints a JSONL span trace produced by the -trace
// flag of cmd/enrichdb, cmd/benchrunner or the examples: spans are grouped
// by epoch, worker-tagged, and annotated with their attributes.
//
// Usage:
//
//	tracefmt trace.jsonl        # or: tracefmt < trace.jsonl
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"enrichdb/internal/telemetry"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		if os.Args[1] == "-h" || os.Args[1] == "--help" {
			fmt.Fprintln(os.Stderr, "usage: tracefmt [trace.jsonl]")
			os.Exit(2)
		}
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := telemetry.FormatSpans(in, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
