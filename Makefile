GO ?= go

.PHONY: check vet build test race bench tidy

# Tier-1 gate: everything a PR must keep green.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race pass over the concurrency-heavy packages: the enrichment
# worker pool, the RPC transport, shared enrichment state, and the chaos
# tests that hammer all three.
race:
	$(GO) test -race ./internal/loose/... ./internal/enrich/... ./internal/faultinject/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

tidy:
	gofmt -l -w .
