GO ?= go

.PHONY: check vet build test race test-race soak serve-soak bench bench-kernel bench-vector bench-serve bench-smoke bench-adaptive bench-shard adaptive-race serve-race shard-race fuzz tidy staticcheck trace-demo trace-e2e

# Tier-1 gate: everything a PR must keep green. staticcheck rides along but
# skips itself when the binary is absent.
check: vet staticcheck build test race serve-race trace-e2e bench-smoke bench-serve adaptive-race shard-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race pass over the concurrency-heavy packages: the enrichment
# worker pool, the RPC transport, shared enrichment state, the telemetry
# registry/tracer they all publish into, the chaos tests that hammer them,
# the serving layer (sessions, admission control) and the concurrent
# workload harness that verifies it.
race:
	$(GO) test -race . ./internal/loose/... ./internal/enrich/... ./internal/faultinject/... ./internal/telemetry/... ./internal/storage/... ./internal/harness/... ./internal/engine/... ./internal/expr/...

# Full concurrency gate: vet, then the concurrency/chaos/equivalence suites
# under the race detector, twice (-count=2 defeats the test cache and shakes
# out order-dependent races). Covers the worker pool and singleflight
# (enrich), the batch transport and chaos tests (loose, faultinject), the
# micro-batching runtime (tight), the view lock (ivm), and the Workers
# equivalence battery (progressive).
test-race: vet
	$(GO) test -race -count=2 \
		. \
		./internal/enrich/... \
		./internal/loose/... \
		./internal/faultinject/... \
		./internal/tight/... \
		./internal/ivm/... \
		./internal/storage/... \
		./internal/progressive/... \
		./internal/telemetry/... \
		./internal/harness/... \
		./internal/engine/... \
		./internal/expr/...

# Pinned-seed soak of the serving workload: N seconds of harness iterations
# under the race detector, every iteration checked by both oracles.
# Override: make soak SOAK_SECONDS=60
SOAK_SECONDS ?= 10
soak:
	HARNESS_SOAK_SECONDS=$(SOAK_SECONDS) $(GO) test -race -count=1 -run TestSoak -timeout $$(( $(SOAK_SECONDS) + 120 ))s ./internal/harness

# Race pass over the serving tier: the wire codec, the TCP server and its
# chaos matrix (half-open peers, slowloris handshakes, abrupt disconnects,
# kill-during-stream, drain under load), the wire client, and the tenant
# admission tests in the root package.
serve-race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/server/... ./internal/testutil/... \
		&& $(GO) test -race -count=1 -run 'TestTenant|TestPriority|TestAdmission|TestSessionTenant|TestQuotaRelease' . \
		&& $(GO) test -race -count=1 -run TestRemoteDrainUnderLoad ./internal/loose/remote

# Pinned-seed network soak: the serving chaos matrix and drain battery loop
# under the race detector for N seconds. Override: make serve-soak SOAK_SECONDS=60
serve-soak:
	$(GO) test -race -count=$$(( $(SOAK_SECONDS) / 5 + 1 )) -timeout $$(( $(SOAK_SECONDS) + 300 ))s \
		-run 'TestChaos|TestDrainUnderLoad' ./internal/server

# Sharded equivalence battery and the shard package's partition/fleet/store
# suites under the race detector: byte-identical sharded≡unsharded output,
# routing, rebalance, work stealing, hedging and failover.
shard-race:
	$(GO) test -race -count=1 -run 'TestShardEquivalence' . \
		&& $(GO) test -race -count=1 ./internal/shard/...

# Short fuzz pass over the SQL parser (no panics; print/parse round-trip),
# the wire-protocol frame codec (decode/encode round-trip, truncation and
# mutation safety, seeded from the checked-in corpus), and the shard router
# (hash/range totality, ±0.0 and NaN parity with the engine hasher, route
# stability under rebalance).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparser
	$(GO) test -fuzz FuzzFrame -fuzztime 30s ./internal/wire
	$(GO) test -fuzz FuzzPartition -fuzztime 30s ./internal/shard

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# One-iteration pass over the kernel, vector and adaptive benchmarks: proves
# the bench harness still compiles and runs without paying full measurement
# time.
bench-smoke:
	$(GO) test -bench '^Benchmark(Kernel|Vector|Adaptive)' -benchtime 1x -run '^$$' ./internal/bench

# Re-measure the execution-kernel microbenchmarks and fold the numbers into
# BENCH_kernel.json under the "current" label (the committed "baseline" label
# captures the pre-slab, string-keyed implementation).
# Each benchmark runs in its own process with a fixed iteration count, so
# the benchmark function executes exactly once. Anything else contaminates
# the large benches: in a shared process (or across `-benchtime 1s` N
# escalations, which re-invoke the function and rebuild the table) the
# 1M-row benches inherit heap history and GC pacing from earlier tables and
# measure several times slower than their true isolated cost.
KERNEL_BENCHES := \
	'^BenchmarkKernelScan$$/^10k$$=1000x' \
	'^BenchmarkKernelScan$$/^100k$$=50x' \
	'^BenchmarkKernelScan$$/^1M$$=5x' \
	'^BenchmarkKernelFilter$$/^10k$$=1000x' \
	'^BenchmarkKernelFilter$$/^100k$$=50x' \
	'^BenchmarkKernelFilter$$/^1M$$=5x' \
	'^BenchmarkKernelHashJoin$$/^10k$$=300x' \
	'^BenchmarkKernelHashJoin$$/^100k$$=20x' \
	'^BenchmarkKernelSemiJoin$$/^10k$$=1000x' \
	'^BenchmarkKernelSemiJoin$$/^100k$$=100x' \
	'^BenchmarkKernelIVMApply$$=500x'

bench-kernel:
	@$(GO) test -c -o .bench-kernel.test ./internal/bench
	@{ for p in $(KERNEL_BENCHES); do \
		./.bench-kernel.test -test.run '^$$' -test.bench "$${p%=*}" \
			-test.benchtime "$${p##*=}" -test.benchmem || exit 1; \
	done; } | $(GO) run ./cmd/benchjson -label current -out BENCH_kernel.json
	@rm -f .bench-kernel.test

# Re-measure the vectorized-execution benchmarks and record both code paths
# into BENCH_vector.json: the "rowpath" label runs every benchmark with
# BENCH_NOVECTOR=1 (row-at-a-time execution), the "vector" label runs the
# columnar batch path — same tasks, same machine, back to back. Same
# process-isolation discipline as bench-kernel.
VECTOR_BENCHES := \
	'^BenchmarkVectorScan$$/col/^10k$$=500x' \
	'^BenchmarkVectorScan$$/col/^100k$$=50x' \
	'^BenchmarkVectorScan$$/col/^1M$$=5x' \
	'^BenchmarkVectorScan$$/wide/^10k$$=500x' \
	'^BenchmarkVectorScan$$/wide/^100k$$=50x' \
	'^BenchmarkVectorScan$$/wide/^1M$$=5x' \
	'^BenchmarkVectorFilter$$/^10k$$=500x' \
	'^BenchmarkVectorFilter$$/^100k$$=50x' \
	'^BenchmarkVectorFilter$$/^1M$$=5x' \
	'^BenchmarkVectorFilterExec$$/^10k$$=500x' \
	'^BenchmarkVectorFilterExec$$/^100k$$=50x' \
	'^BenchmarkVectorFilterExec$$/^1M$$=5x'

bench-vector:
	@$(GO) test -c -o .bench-vector.test ./internal/bench
	@{ for p in $(VECTOR_BENCHES); do \
		BENCH_NOVECTOR=1 ./.bench-vector.test -test.run '^$$' -test.bench "$${p%=*}" \
			-test.benchtime "$${p##*=}" -test.benchmem || exit 1; \
	done; } | $(GO) run ./cmd/benchjson -label rowpath -out BENCH_vector.json \
		-note "Vectorized scan/filter vs the row path, same tasks back to back; regenerate with \`make bench-vector\`."
	@{ for p in $(VECTOR_BENCHES); do \
		./.bench-vector.test -test.run '^$$' -test.bench "$${p%=*}" \
			-test.benchtime "$${p##*=}" -test.benchmem || exit 1; \
	done; } | $(GO) run ./cmd/benchjson -label vector -out BENCH_vector.json
	@rm -f .bench-vector.test

# Serving-tier load benchmark: the load generator drives an in-process wire
# server with SERVE_CONNS concurrent connections across mixed tenants and
# folds p50/p95/p99/mean/throughput into BENCH_serve.json. The committed
# numbers were recorded with SERVE_CONNS=1000 SERVE_SECONDS=5s; the default
# here is scaled down so `make check` stays fast.
SERVE_CONNS ?= 200
SERVE_SECONDS ?= 2s
bench-serve:
	$(GO) run ./cmd/loadgen -conns $(SERVE_CONNS) -duration $(SERVE_SECONDS) -rows 256 \
		| $(GO) run ./cmd/benchjson -label current -out BENCH_serve.json \
		-note "Wire-protocol serving-tier load test (loadgen): query latency percentiles and mean inter-completion gap; regenerate with \`make bench-serve\` (headline label: SERVE_CONNS=1000 SERVE_SECONDS=5s)."

# Re-measure the adaptive-optimization benchmarks into BENCH_adaptive.json:
# the /static and /adaptive (and TTQ strategy) sub-benchmarks are the same
# workload with adaptivity off and on, so the recorded ns/op pairs are the
# headline comparison. Fixed iteration counts for stable numbers; TTQ's ns/op
# is the measured time-to-F1-target, excluding env construction.
ADAPTIVE_BENCHES := \
	'^BenchmarkAdaptiveFilter$$/static=5x' \
	'^BenchmarkAdaptiveFilter$$/adaptive=5x' \
	'^BenchmarkAdaptiveTTQ$$/SBRO=5x' \
	'^BenchmarkAdaptiveTTQ$$/SBFO=5x' \
	'^BenchmarkAdaptiveTTQ$$/adaptive=5x'

bench-adaptive:
	@$(GO) test -c -o .bench-adaptive.test ./internal/bench
	@{ for p in $(ADAPTIVE_BENCHES); do \
		./.bench-adaptive.test -test.run '^$$' -test.bench "$${p%=*}" \
			-test.benchtime "$${p##*=}" -test.benchmem || exit 1; \
	done; } | $(GO) run ./cmd/benchjson -label current -out BENCH_adaptive.json \
		-note "Adaptive optimization (DESIGN §14): pessimally-ordered skew filter with/without cheapest-rejection-first reordering, and progressive time-to-F1 target under SB(RO)/SB(FO)/Adaptive strategies; regenerate with \`make bench-adaptive\`."
	@rm -f .bench-adaptive.test

# Re-measure the sharding benchmarks into BENCH_shard.json: scatter-gather
# scan over 1/2/4/8 shard replicas (same rows, same filter, byte-identical
# merged output) and the enrichment fleet's hedged-request tail — identical
# batches against a fleet with one 10×-slow server, hedging on vs off; the
# p99-ns metric pair is the headline (hedging clips the straggler's tail).
# Same process-isolation discipline as bench-kernel.
SHARD_BENCHES := \
	'^BenchmarkShardScan$$/^shards=1$$=30x' \
	'^BenchmarkShardScan$$/^shards=2$$=30x' \
	'^BenchmarkShardScan$$/^shards=4$$=30x' \
	'^BenchmarkShardScan$$/^shards=8$$=30x' \
	'^BenchmarkShardHedgeTail$$/hedged=50x' \
	'^BenchmarkShardHedgeTail$$/nohedge=50x'

bench-shard:
	@$(GO) test -c -o .bench-shard.test ./internal/bench
	@{ for p in $(SHARD_BENCHES); do \
		./.bench-shard.test -test.run '^$$' -test.bench "$${p%=*}" \
			-test.benchtime "$${p##*=}" -test.benchmem || exit 1; \
	done; } | $(GO) run ./cmd/benchjson -label current -out BENCH_shard.json \
		-note "Sharding (DESIGN §15): scatter-gather scan scaling across shard counts and the enrichment fleet's hedged-tail p99 vs no-hedge with one 10x-slow server; regenerate with \`make bench-shard\`."
	@rm -f .bench-shard.test

# Adaptive equivalence battery under the race detector: the byte-identical
# contract (adaptive on/off, drift reordering, build-side swaps) and the
# progressive adaptive-strategy determinism grid.
adaptive-race:
	$(GO) test -race -count=1 -run 'TestAdaptive|TestProgressiveAdaptiveStrategy' ./internal/engine ./internal/progressive

tidy:
	gofmt -l -w .

# Static analysis beyond vet. Skips gracefully when the staticcheck binary
# is not installed (it is not vendored and must not be fetched by CI).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Observability demo: run the quickstart with span tracing and pretty-print
# the resulting trace, grouped by epoch.
trace-demo:
	$(GO) run ./examples/quickstart -trace /tmp/enrichdb-trace.jsonl
	$(GO) run ./cmd/tracefmt /tmp/enrichdb-trace.jsonl

# End-to-end trace gate: one sampled served query must produce a single
# JSONL trace whose span chain covers handshake → admission → plan →
# per-epoch enrich/determinize/refresh → result-stream, all under one trace
# ID, with the span summaries echoed back to the client in a Profile frame.
trace-e2e:
	$(GO) test -count=1 -run 'TestTraceE2E|TestExplainAnalyzeOverWire' ./internal/server
