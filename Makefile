GO ?= go

.PHONY: check vet build test race test-race bench fuzz tidy

# Tier-1 gate: everything a PR must keep green.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race pass over the concurrency-heavy packages: the enrichment
# worker pool, the RPC transport, shared enrichment state, and the chaos
# tests that hammer all three.
race:
	$(GO) test -race ./internal/loose/... ./internal/enrich/... ./internal/faultinject/...

# Full concurrency gate: vet, then the concurrency/chaos/equivalence suites
# under the race detector, twice (-count=2 defeats the test cache and shakes
# out order-dependent races). Covers the worker pool and singleflight
# (enrich), the batch transport and chaos tests (loose, faultinject), the
# micro-batching runtime (tight), the view lock (ivm), and the Workers
# equivalence battery (progressive).
test-race: vet
	$(GO) test -race -count=2 \
		./internal/enrich/... \
		./internal/loose/... \
		./internal/faultinject/... \
		./internal/tight/... \
		./internal/ivm/... \
		./internal/progressive/...

# Short fuzz pass over the SQL parser (no panics; print/parse round-trip).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparser

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

tidy:
	gofmt -l -w .
