GO ?= go

.PHONY: check vet build test race test-race bench fuzz tidy staticcheck trace-demo

# Tier-1 gate: everything a PR must keep green. staticcheck rides along but
# skips itself when the binary is absent.
check: vet staticcheck build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Short race pass over the concurrency-heavy packages: the enrichment
# worker pool, the RPC transport, shared enrichment state, the telemetry
# registry/tracer they all publish into, and the chaos tests that hammer
# them.
race:
	$(GO) test -race ./internal/loose/... ./internal/enrich/... ./internal/faultinject/... ./internal/telemetry/...

# Full concurrency gate: vet, then the concurrency/chaos/equivalence suites
# under the race detector, twice (-count=2 defeats the test cache and shakes
# out order-dependent races). Covers the worker pool and singleflight
# (enrich), the batch transport and chaos tests (loose, faultinject), the
# micro-batching runtime (tight), the view lock (ivm), and the Workers
# equivalence battery (progressive).
test-race: vet
	$(GO) test -race -count=2 \
		./internal/enrich/... \
		./internal/loose/... \
		./internal/faultinject/... \
		./internal/tight/... \
		./internal/ivm/... \
		./internal/progressive/... \
		./internal/telemetry/...

# Short fuzz pass over the SQL parser (no panics; print/parse round-trip).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparser

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

tidy:
	gofmt -l -w .

# Static analysis beyond vet. Skips gracefully when the staticcheck binary
# is not installed (it is not vendored and must not be fetched by CI).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Observability demo: run the quickstart with span tracing and pretty-print
# the resulting trace, grouped by epoch.
trace-demo:
	$(GO) run ./examples/quickstart -trace /tmp/enrichdb-trace.jsonl
	$(GO) run ./cmd/tracefmt /tmp/enrichdb-trace.jsonl
