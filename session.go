package enrichdb

import (
	"fmt"
	"sync/atomic"
	"time"

	"enrichdb/internal/engine"
	"enrichdb/internal/loose"
	"enrichdb/internal/storage"
	"enrichdb/internal/tight"
)

// ServingConfig bounds concurrent serving (admission control).
type ServingConfig struct {
	// MaxSessions is the maximum number of concurrently open sessions; 0 or
	// negative means unlimited.
	MaxSessions int
	// QueueTimeout is how long Session() waits for a slot when MaxSessions
	// are already open before failing with ErrSessionTimeout. Zero rejects
	// immediately when the database is at capacity.
	QueueTimeout time.Duration
}

// ErrSessionTimeout is returned by Session when admission control could not
// grant a slot within the configured queue timeout.
var ErrSessionTimeout = fmt.Errorf("enrichdb: session admission timed out")

// admission is the slot gate behind SetServing: a buffered channel holds the
// free slots; Session() takes one (waiting up to the timeout) and Close
// returns it. The serve.* gauges/counters publish its state.
type admission struct {
	slots   chan struct{}
	timeout time.Duration
}

// SetServing installs admission control for Session. Sessions already open
// keep their slots from the previous configuration; passing a config with
// MaxSessions <= 0 removes the limit. Telemetry: serve.sessions_active,
// serve.sessions_queued (gauges), serve.sessions_admitted,
// serve.sessions_rejected, serve.queue_wait_ns (counters).
func (db *DB) SetServing(cfg ServingConfig) {
	if cfg.MaxSessions <= 0 {
		db.serving.Store(nil)
		return
	}
	a := &admission{slots: make(chan struct{}, cfg.MaxSessions), timeout: cfg.QueueTimeout}
	for i := 0; i < cfg.MaxSessions; i++ {
		a.slots <- struct{}{}
	}
	db.serving.Store(a)
}

// Version returns the commit version: the number of committed writes
// (inserts, updates, deletes) since the database opened. Snapshot-isolated
// sessions are tagged with the version their snapshot was taken at.
func (db *DB) Version() uint64 { return db.version.Load() }

// Session is a snapshot-isolated read view of the database, taken atomically
// across all relations at one commit version.
//
// Queries on a session (Query, QueryLoose, QueryTight) see exactly the data
// committed as of Version(), regardless of concurrent writers. Query-time
// enrichment performed inside a session is written into the session's own
// view (so the session's answers include it) and shared back to the live
// database generation-guarded: enrichment of tuples that still exist
// unchanged benefits every later query — the paper's "exploit prior work"
// probe step — while enrichment computed from superseded tuple images is
// dropped. Enrichment state (the manager) and the worker pools are shared
// across all sessions; concurrent identical computations collapse into one
// function run via the manager's generation-keyed singleflight.
//
// A session must be Closed to release its admission slot. Sessions are safe
// for concurrent use by multiple goroutines.
type Session struct {
	db      *DB
	snap    *storage.Snapshot
	version uint64
	slot    *admission // nil when admission control is off
	closed  atomic.Bool
}

// Session opens a snapshot-isolated session at the current commit version,
// subject to admission control when SetServing configured a session limit
// (queueing up to the configured timeout for a free slot).
func (db *DB) Session() (*Session, error) {
	reg := db.Telemetry()
	adm := db.serving.Load()
	if adm != nil {
		select {
		case <-adm.slots:
			reg.Counter("serve.sessions_admitted").Add(1)
		default:
			// Full: queue with timeout.
			reg.Gauge("serve.sessions_queued").Add(1)
			waitStart := time.Now()
			var timeout <-chan time.Time
			if adm.timeout > 0 {
				t := time.NewTimer(adm.timeout)
				defer t.Stop()
				timeout = t.C
			} else {
				closed := make(chan time.Time)
				close(closed)
				timeout = closed
			}
			select {
			case <-adm.slots:
				reg.Gauge("serve.sessions_queued").Add(-1)
				reg.Counter("serve.queue_wait_ns").Add(time.Since(waitStart).Nanoseconds())
				reg.Counter("serve.sessions_admitted").Add(1)
			case <-timeout:
				reg.Gauge("serve.sessions_queued").Add(-1)
				reg.Counter("serve.sessions_rejected").Add(1)
				return nil, ErrSessionTimeout
			}
		}
	}
	// Freeze the snapshot under the commit lock so the view is atomic across
	// relations and carries exactly one commit version.
	db.commitMu.Lock()
	version := db.version.Load()
	snap := db.store.Snapshot()
	db.commitMu.Unlock()
	db.Telemetry().Gauge("serve.sessions_active").Add(1)
	return &Session{db: db, snap: snap, version: version, slot: adm}, nil
}

// Close releases the session's admission slot. Closing twice is a no-op.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.db.Telemetry().Gauge("serve.sessions_active").Add(-1)
	if s.slot != nil {
		s.slot.slots <- struct{}{}
	}
	return nil
}

// Version returns the commit version the session's snapshot was taken at.
func (s *Session) Version() uint64 { return s.version }

// Query executes a query against the snapshot without any enrichment:
// derived attributes read as frozen in the snapshot.
func (s *Session) Query(query string) (*Rows, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, err
	}
	rows, err := plan.Execute(engine.NewExecCtx())
	if err != nil {
		return nil, err
	}
	return wrapRows(plan.Schema(), rows), nil
}

// QueryLoose executes a query against the snapshot with the loose design.
// Enrichment runs on the snapshot's tuple images through the shared manager
// and enrichment server; determined values land in the session's view and,
// generation-guarded, in the live tables.
func (s *Session) QueryLoose(query string) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	drv := &loose.Driver{DB: s.snap, Mgr: s.db.mgr, Enricher: s.db.enricher, Tracer: s.db.tracer}
	res, err := drv.Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:              wrapRows(plan.Schema(), res.Rows),
		Enrichments:       res.Enrichments,
		FailedEnrichments: res.FailedEnrichments,
		EnrichErrors:      res.EnrichErrors,
		Timing: QueryTiming{
			Probe:   res.Timing.Probe,
			Enrich:  res.Timing.Enrich,
			Network: res.Timing.Network,
			DBMS:    res.Timing.DBMS,
		},
	}, nil
}

// QueryTight executes a query against the snapshot with the tight design:
// rewritten UDFs enrich the snapshot's tuple images lazily during predicate
// evaluation, sharing state and deduplication with every other session.
func (s *Session) QueryTight(query string) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	enrichBefore := s.db.mgr.Counters().EnrichTime
	drv := &tight.Driver{DB: s.snap, Mgr: s.db.mgr, InvokeOverhead: s.db.TightInvokeOverhead, Tracer: s.db.tracer}
	res, err := drv.Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:           wrapRows(plan.Schema(), res.Rows),
		Enrichments:    res.Enrichments,
		UDFInvocations: res.UDFInvocations,
		Timing:         splitTightTiming(res.DBMS, s.db.mgr.Counters().EnrichTime-enrichBefore),
	}, nil
}

// QueryProgressive executes a progressive query through the session. The
// progressive pipeline maintains its answer incrementally against live data
// (its IVM view consumes committed deltas), so it runs over the live
// database rather than the frozen snapshot: results are read-committed and
// refine monotonically with enrichment, sharing the scheduler pool and
// enrichment state with every concurrent session.
func (s *Session) QueryProgressive(query string, opts ProgressiveOptions) (*ProgressiveResult, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	return s.db.QueryProgressive(query, opts)
}
