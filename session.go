package enrichdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enrichdb/internal/engine"
	"enrichdb/internal/loose"
	"enrichdb/internal/shard"
	"enrichdb/internal/storage"
	"enrichdb/internal/telemetry"
	"enrichdb/internal/tight"
)

// TenantConfig bounds one tenant's share of the serving capacity.
type TenantConfig struct {
	// MaxSessions caps the tenant's concurrently open sessions; 0 or negative
	// means no per-tenant cap (the global MaxSessions still applies).
	MaxSessions int
	// Priority orders the admission queue: when a slot frees up, the waiting
	// session with the highest priority is admitted first (FIFO within a
	// priority). Unconfigured tenants have priority 0; negatives are allowed.
	Priority int
}

// ServingConfig bounds concurrent serving (admission control).
type ServingConfig struct {
	// MaxSessions is the maximum number of concurrently open sessions across
	// all tenants; 0 or negative means unlimited.
	MaxSessions int
	// QueueTimeout is how long Session() waits for a slot when the database
	// is at capacity before failing with ErrSessionTimeout. Zero rejects
	// immediately when at capacity.
	QueueTimeout time.Duration
	// Tenants holds per-tenant quotas and priorities, keyed by tenant name.
	// Tenants not listed here are admitted with no per-tenant cap at
	// priority 0. An empty map (with MaxSessions > 0) gives every tenant the
	// same treatment.
	Tenants map[string]TenantConfig
}

// ErrSessionTimeout is returned by Session when admission control could not
// grant a slot within the configured queue timeout.
var ErrSessionTimeout = fmt.Errorf("enrichdb: session admission timed out")

// tenantGate tracks one tenant's admission state under admission.mu.
type tenantGate struct {
	name     string
	max      int // per-tenant session cap; <=0 unlimited
	priority int
	active   int
}

// waiter is one queued Session call, held in admission.waiters in arrival
// order. The granting goroutine (a releasing Close) moves the accounting and
// closes ready under admission.mu; granted disambiguates the race between a
// grant and the waiter's own timeout.
type waiter struct {
	gate    *tenantGate
	ready   chan struct{}
	granted bool
}

// admission is the gate behind SetServing: a priority queue of waiters over
// a global slot count plus per-tenant quotas. Session() admits immediately
// when both the global and the tenant budget have room; otherwise it queues
// up to the timeout. A releasing Close grants the highest-priority waiter
// whose tenant is under quota (FIFO within a priority) — waiters blocked only
// by their own tenant's cap never hold up other tenants. The serve.* gauges
// and counters publish its state.
type admission struct {
	timeout time.Duration
	max     int // global session cap; <=0 unlimited

	mu      sync.Mutex
	active  int
	gates   map[string]*tenantGate
	waiters []*waiter
}

// SetServing installs admission control for Session and SessionFor. Sessions
// already open keep their slots from the previous configuration; passing a
// zero config (no global cap, no tenants) removes the limit. Telemetry:
// serve.sessions_active, serve.sessions_queued (gauges),
// serve.sessions_admitted, serve.sessions_rejected, serve.queue_wait_ns
// (counters), plus per-tenant serve.tenant.<name>.active gauges and
// .admitted/.rejected counters for named tenants.
func (db *DB) SetServing(cfg ServingConfig) {
	if cfg.MaxSessions <= 0 && len(cfg.Tenants) == 0 {
		db.serving.Store(nil)
		return
	}
	a := &admission{
		timeout: cfg.QueueTimeout,
		max:     cfg.MaxSessions,
		gates:   make(map[string]*tenantGate, len(cfg.Tenants)),
	}
	for name, tc := range cfg.Tenants {
		a.gates[name] = &tenantGate{name: name, max: tc.MaxSessions, priority: tc.Priority}
	}
	db.serving.Store(a)
}

// gateLocked returns the tenant's gate, creating an uncapped priority-0 gate
// for tenants absent from the configuration.
func (a *admission) gateLocked(tenant string) *tenantGate {
	g := a.gates[tenant]
	if g == nil {
		g = &tenantGate{name: tenant}
		a.gates[tenant] = g
	}
	return g
}

// grantableLocked reports whether a session for g fits both budgets.
func (a *admission) grantableLocked(g *tenantGate) bool {
	if a.max > 0 && a.active >= a.max {
		return false
	}
	return g.max <= 0 || g.active < g.max
}

// grantLocked charges one session to the global and tenant budgets.
func (a *admission) grantLocked(g *tenantGate) {
	a.active++
	g.active++
}

// grantWaitersLocked hands freed capacity to queued waiters: repeatedly the
// grantable waiter with the highest priority (earliest arrival within a
// priority) is admitted, skipping waiters blocked by their own tenant cap.
func (a *admission) grantWaitersLocked() {
	for {
		best := -1
		for i, w := range a.waiters {
			if !a.grantableLocked(w.gate) {
				continue
			}
			if best < 0 || w.gate.priority > a.waiters[best].gate.priority {
				best = i
			}
		}
		if best < 0 {
			return
		}
		w := a.waiters[best]
		a.waiters = append(a.waiters[:best], a.waiters[best+1:]...)
		w.granted = true
		a.grantLocked(w.gate)
		close(w.ready)
	}
}

func (a *admission) removeWaiterLocked(w *waiter) {
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			return
		}
	}
}

func admitCounters(reg *telemetry.Registry, g *tenantGate) {
	reg.Counter("serve.sessions_admitted").Add(1)
	if g.name != "" {
		reg.Counter("serve.tenant." + g.name + ".admitted").Add(1)
	}
}

func rejectCounters(reg *telemetry.Registry, g *tenantGate) {
	reg.Counter("serve.sessions_rejected").Add(1)
	if g.name != "" {
		reg.Counter("serve.tenant." + g.name + ".rejected").Add(1)
	}
}

// observeWait records one admission's queue wait in the serve.admission_wait_ms
// histogram (zero for immediate grants, so quantiles cover every admission).
func observeWait(reg *telemetry.Registry, d time.Duration) {
	reg.Histogram("serve.admission_wait_ms", telemetry.LatencyBucketsMs).ObserveDuration(d)
}

// acquire admits one session for tenant, queueing up to the timeout. On
// success it returns the charged gate; release undoes the charge.
func (a *admission) acquire(reg *telemetry.Registry, tenant string) (*tenantGate, error) {
	a.mu.Lock()
	g := a.gateLocked(tenant)
	if a.grantableLocked(g) {
		a.grantLocked(g)
		a.mu.Unlock()
		admitCounters(reg, g)
		observeWait(reg, 0)
		return g, nil
	}
	if a.timeout <= 0 {
		a.mu.Unlock()
		rejectCounters(reg, g)
		return nil, ErrSessionTimeout
	}
	w := &waiter{gate: g, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	reg.Gauge("serve.sessions_queued").Add(1)
	defer reg.Gauge("serve.sessions_queued").Add(-1)
	waitStart := time.Now()
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case <-w.ready:
		reg.Counter("serve.queue_wait_ns").Add(time.Since(waitStart).Nanoseconds())
		admitCounters(reg, g)
		observeWait(reg, time.Since(waitStart))
		return g, nil
	case <-t.C:
	}
	// The timer fired, but a grant may have raced it: granted is settled
	// under the lock, and a granted waiter keeps its slot (the grantor
	// already charged the budgets).
	a.mu.Lock()
	if w.granted {
		a.mu.Unlock()
		reg.Counter("serve.queue_wait_ns").Add(time.Since(waitStart).Nanoseconds())
		admitCounters(reg, g)
		observeWait(reg, time.Since(waitStart))
		return g, nil
	}
	a.removeWaiterLocked(w)
	a.mu.Unlock()
	rejectCounters(reg, g)
	return nil, ErrSessionTimeout
}

// TenantStatus is one tenant's live admission state (a /statusz row).
type TenantStatus struct {
	Name     string // "" is the default tenant
	Active   int    // open sessions
	Max      int    // per-tenant cap; <=0 unlimited
	Priority int
	Queued   int // sessions waiting on this tenant's quota or the global cap
}

// ServingStatus is a point-in-time view of admission control, the data
// behind the serving tier's /statusz endpoint.
type ServingStatus struct {
	Enabled     bool
	MaxSessions int // global cap; <=0 unlimited
	Active      int // open sessions across all tenants
	Queued      int // waiters across all tenants
	Tenants     []TenantStatus
}

// ServingStatus reports the admission gate's live state: totals plus one row
// per tenant that has a configured quota or has opened a session, sorted by
// name. With serving disabled it returns the zero value.
func (db *DB) ServingStatus() ServingStatus {
	a := db.serving.Load()
	if a == nil {
		return ServingStatus{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := ServingStatus{Enabled: true, MaxSessions: a.max, Active: a.active, Queued: len(a.waiters)}
	queued := make(map[string]int)
	for _, w := range a.waiters {
		queued[w.gate.name]++
	}
	names := make([]string, 0, len(a.gates))
	for name := range a.gates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := a.gates[name]
		st.Tenants = append(st.Tenants, TenantStatus{
			Name: g.name, Active: g.active, Max: g.max,
			Priority: g.priority, Queued: queued[g.name],
		})
	}
	return st
}

// release returns one session's capacity and wakes eligible waiters.
func (a *admission) release(g *tenantGate) {
	a.mu.Lock()
	a.active--
	g.active--
	a.grantWaitersLocked()
	a.mu.Unlock()
}

// Version returns the commit version: the number of committed writes
// (inserts, updates, deletes) since the database opened. Snapshot-isolated
// sessions are tagged with the version their snapshot was taken at.
func (db *DB) Version() uint64 { return db.version.Load() }

// Session is a snapshot-isolated read view of the database, taken atomically
// across all relations at one commit version.
//
// Queries on a session (Query, QueryLoose, QueryTight) see exactly the data
// committed as of Version(), regardless of concurrent writers. Query-time
// enrichment performed inside a session is written into the session's own
// view (so the session's answers include it) and shared back to the live
// database generation-guarded: enrichment of tuples that still exist
// unchanged benefits every later query — the paper's "exploit prior work"
// probe step — while enrichment computed from superseded tuple images is
// dropped. Enrichment state (the manager) and the worker pools are shared
// across all sessions; concurrent identical computations collapse into one
// function run via the manager's generation-keyed singleflight.
//
// A session must be Closed to release its admission slot. Sessions are safe
// for concurrent use by multiple goroutines.
type Session struct {
	db      *DB
	snap    storage.Source
	version uint64
	tenant  string
	adm     *admission  // nil when admission control is off
	gate    *tenantGate // charged tenant budget, released by Close
	closed  atomic.Bool
}

// Session opens a snapshot-isolated session at the current commit version
// for the default (unnamed) tenant, subject to admission control when
// SetServing configured a session limit (queueing up to the configured
// timeout for a free slot).
func (db *DB) Session() (*Session, error) { return db.SessionFor("") }

// SessionFor opens a snapshot-isolated session on behalf of the named
// tenant. The tenant's quota and queue priority from ServingConfig.Tenants
// apply; tenants absent from the configuration are admitted uncapped at
// priority 0 (the global MaxSessions still applies).
func (db *DB) SessionFor(tenant string) (*Session, error) {
	reg := db.Telemetry()
	adm := db.serving.Load()
	var gate *tenantGate
	if adm != nil {
		var err error
		if gate, err = adm.acquire(reg, tenant); err != nil {
			return nil, err
		}
	}
	// Freeze the snapshot under the commit lock so the view is atomic across
	// relations and carries exactly one commit version.
	db.commitMu.Lock()
	version := db.version.Load()
	snap := db.store.Freeze()
	db.commitMu.Unlock()
	reg.Gauge("serve.sessions_active").Add(1)
	if tenant != "" {
		reg.Gauge("serve.tenant." + tenant + ".active").Add(1)
	}
	return &Session{db: db, snap: snap, version: version, tenant: tenant, adm: adm, gate: gate}, nil
}

// Close releases the session's admission slot. Closing twice is a no-op.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	reg := s.db.Telemetry()
	reg.Gauge("serve.sessions_active").Add(-1)
	if s.tenant != "" {
		reg.Gauge("serve.tenant." + s.tenant + ".active").Add(-1)
	}
	if s.adm != nil {
		s.adm.release(s.gate)
	}
	return nil
}

// Version returns the commit version the session's snapshot was taken at.
func (s *Session) Version() uint64 { return s.version }

// Tenant returns the tenant name the session was opened for ("" for the
// default tenant).
func (s *Session) Tenant() string { return s.tenant }

// Query executes a query against the snapshot without any enrichment:
// derived attributes read as frozen in the snapshot.
func (s *Session) Query(query string) (*Rows, error) {
	return s.QueryCtx(context.Background(), query)
}

// ExplainPlan renders the plan-only EXPLAIN (no ANALYZE) for a query
// against the session's snapshot: the operator tree the adaptive optimizer
// would run, annotated with estimated rows/costs and any observed
// selectivities from the database's runtime-statistics store. Nothing
// executes — no scans, no enrichment. `EXPLAIN SELECT ...` over the wire
// protocol renders this tree.
func (s *Session) ExplainPlan(query string) (string, error) {
	if s.closed.Load() {
		return "", fmt.Errorf("enrichdb: session is closed")
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return "", err
	}
	st := s.db.runtimeStats
	if s.db.NoAdaptive {
		st = nil
	}
	plan, err := engine.BuildOpt(a, s.snap, engine.BuildOptions{Stats: st, NoAdaptive: s.db.NoAdaptive})
	if err != nil {
		return "", err
	}
	return engine.AnnotatedExplain(plan, &engine.CostModel{Store: st}), nil
}

// QueryCtx is Query with cancellation: the executor polls ctx's Done channel
// between batches of work and aborts with ctx.Err() once it fires, so a long
// scan, filter or join can be killed mid-flight.
func (s *Session) QueryCtx(ctx context.Context, query string) (*Rows, error) {
	rows, _, err := s.QueryObsCtx(ctx, query, QueryObs{})
	return rows, err
}

// QueryObsCtx is QueryCtx with per-query observability: a tracer override
// and, when obs.Profile is set, the EXPLAIN ANALYZE operator tree of the
// executed plan.
func (s *Session) QueryObsCtx(ctx context.Context, query string, obs QueryObs) (*Rows, *QueryProfile, error) {
	if s.closed.Load() {
		return nil, nil, fmt.Errorf("enrichdb: session is closed")
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, nil, err
	}
	ec := engine.NewExecCtx()
	ec.Done = ctx.Done()
	ec.Adapt = s.db.runtimeStats
	ec.NoAdaptive = s.db.NoAdaptive
	prof := newProfiler(obs)
	// Sharded snapshots fan eligible single-table shapes out across the
	// per-shard frozen views (byte-identical merged answer). Profiled runs
	// take the single-plan path so the operator tree stays meaningful.
	if sc, ok := s.snap.(shard.Scatterable); ok && prof == nil {
		rows, schema, hit, serr := shard.Scatter(a, sc, ec)
		if serr != nil {
			if errors.Is(serr, engine.ErrCanceled) && ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			return nil, nil, serr
		}
		if hit {
			s.db.Telemetry().Counter("shard.scatter_queries").Add(1)
			return wrapRows(schema, rows), nil, nil
		}
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, nil, err
	}
	ec.Prof = prof
	sp := s.obsTracer(obs).Start("plain.execute")
	rows, err := plan.Execute(ec)
	if err != nil {
		sp.Str("error", err.Error()).End()
		if errors.Is(err, engine.ErrCanceled) && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	sp.Int("rows", int64(len(rows))).End()
	return wrapRows(plan.Schema(), rows), profileResult("plain", prof), nil
}

// QueryLoose executes a query against the snapshot with the loose design.
// Enrichment runs on the snapshot's tuple images through the shared manager
// and enrichment server; determined values land in the session's view and,
// generation-guarded, in the live tables.
func (s *Session) QueryLoose(query string) (*Result, error) {
	return s.QueryLooseObs(query, QueryObs{})
}

// QueryLooseObs is QueryLoose with per-query observability: a tracer
// override (spans land under the query's trace) and, when obs.Profile is
// set, the EXPLAIN ANALYZE phase tree on Result.Profile.
func (s *Session) QueryLooseObs(query string, obs QueryObs) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	prof := newProfiler(obs)
	drv := &loose.Driver{DB: s.snap, Mgr: s.db.mgr, Enricher: s.db.enricher,
		Tracer: s.obsTracer(obs), Prof: prof,
		Stats: s.db.runtimeStats, NoAdaptive: s.db.NoAdaptive}
	res, err := drv.Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:              wrapRows(plan.Schema(), res.Rows),
		Enrichments:       res.Enrichments,
		FailedEnrichments: res.FailedEnrichments,
		EnrichErrors:      res.EnrichErrors,
		Timing: QueryTiming{
			Probe:   res.Timing.Probe,
			Enrich:  res.Timing.Enrich,
			Network: res.Timing.Network,
			DBMS:    res.Timing.DBMS,
		},
		Profile: profileResult("loose", prof),
	}, nil
}

// QueryTight executes a query against the snapshot with the tight design:
// rewritten UDFs enrich the snapshot's tuple images lazily during predicate
// evaluation, sharing state and deduplication with every other session.
func (s *Session) QueryTight(query string) (*Result, error) {
	return s.QueryTightObs(query, QueryObs{})
}

// QueryTightObs is QueryTight with per-query observability: a tracer
// override and, when obs.Profile is set, the rewritten plan's EXPLAIN
// ANALYZE tree on Result.Profile.
func (s *Session) QueryTightObs(query string, obs QueryObs) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	enrichBefore := s.db.mgr.Counters().EnrichTime
	prof := newProfiler(obs)
	drv := &tight.Driver{DB: s.snap, Mgr: s.db.mgr, InvokeOverhead: s.db.TightInvokeOverhead,
		Tracer: s.obsTracer(obs), Prof: prof,
		Stats: s.db.runtimeStats, NoAdaptive: s.db.NoAdaptive}
	res, err := drv.Execute(query)
	if err != nil {
		return nil, err
	}
	a, err := s.db.analyzeSQL(query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Build(a, s.snap)
	if err != nil {
		return nil, err
	}
	return &Result{
		Rows:           wrapRows(plan.Schema(), res.Rows),
		Enrichments:    res.Enrichments,
		UDFInvocations: res.UDFInvocations,
		Timing:         splitTightTiming(res.DBMS, s.db.mgr.Counters().EnrichTime-enrichBefore),
		Profile:        profileResult("tight", prof),
	}, nil
}

// QueryProgressive executes a progressive query through the session. The
// progressive pipeline maintains its answer incrementally against live data
// (its IVM view consumes committed deltas), so it runs over the live
// database rather than the frozen snapshot: results are read-committed and
// refine monotonically with enrichment, sharing the scheduler pool and
// enrichment state with every concurrent session.
func (s *Session) QueryProgressive(query string, opts ProgressiveOptions) (*ProgressiveResult, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("enrichdb: session is closed")
	}
	return s.db.QueryProgressive(query, opts)
}
