package enrichdb

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// stepModel is a deterministic pure-function classifier for serving tests:
// equal features always produce equal distributions.
type stepModel struct{ classes int }

func (m stepModel) Name() string                            { return "step" }
func (m stepModel) Fit(_ [][]float64, _ []int, _ int) error { return nil }
func (m stepModel) Classes() int                            { return m.classes }
func (m stepModel) PredictProba(x []float64) []float64 {
	h := uint64(1469598103934665603)
	for _, v := range x {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	out := make([]float64, m.classes)
	for i := range out {
		out[i] = 0.1
	}
	out[h%uint64(m.classes)] = 1 - 0.1*float64(m.classes-1)
	return out
}

// servingDB builds an Events relation with one deterministic enrichment
// function and n rows.
func servingDB(t *testing.T, n int) *DB {
	t.Helper()
	db := Open()
	err := db.CreateRelation("Events", []Column{
		{Name: "id", Kind: KindInt},
		{Name: "feature", Kind: KindVector},
		{Name: "grp", Kind: KindInt},
		{Name: "label", Kind: KindInt, Derived: true, FeatureCol: "feature", Domain: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterEnrichment("Events", "label", Function{Model: stepModel{classes: 3}, Quality: 0.9}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		vec := []float64{float64(i), float64(i * 31)}
		if _, err := db.Insert("Events", int64(i), Int(int64(i)), Vector(vec), Int(int64(i%4)), Null); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestSessionSnapshotIsolation pins the core serving guarantee: a session
// opened before a write answers from the pre-write image, for plain reads
// and for enriching queries alike, while the live database and later
// sessions see the new image.
func TestSessionSnapshotIsolation(t *testing.T) {
	db := servingDB(t, 8)
	defer db.Close()

	sess, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	v0 := sess.Version()

	before, err := sess.QueryLoose("SELECT id, label FROM Events WHERE grp = 1")
	if err != nil {
		t.Fatal(err)
	}

	// Move tuple 1 out of grp 1 and rewrite tuple 5's feature.
	if err := db.Update("Events", 1, "grp", Int(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("Events", 5, "feature", Vector([]float64{999, 999})); err != nil {
		t.Fatal(err)
	}
	if db.Version() <= v0 {
		t.Fatalf("commit version did not advance: %d <= %d", db.Version(), v0)
	}

	// The old session still sees the pre-write answer, byte for byte.
	after, err := sess.QueryLoose("SELECT id, label FROM Events WHERE grp = 1")
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(before.Rows) != renderRows(after.Rows) {
		t.Fatalf("snapshot leaked a concurrent write:\nbefore:\n%s\nafter:\n%s",
			renderRows(before.Rows), renderRows(after.Rows))
	}
	if sess.Version() != v0 {
		t.Fatalf("session version moved: %d -> %d", v0, sess.Version())
	}

	// A fresh session sees the new image.
	sess2, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	fresh, err := sess2.Query("SELECT id FROM Events WHERE grp = 1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fresh.Len(); i++ {
		if fresh.At(i)[0].Int() == 1 {
			t.Fatal("new session still sees tuple 1 in grp 1")
		}
	}
}

// TestSessionSharedEnrichment pins cross-session work sharing: two sessions
// at the same version share one execution per function and tuple, and agree
// on every answer.
func TestSessionSharedEnrichment(t *testing.T) {
	db := servingDB(t, 10)
	defer db.Close()

	s1, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	r1, err := s1.QueryLoose("SELECT id, label FROM Events WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	runsAfterFirst := db.Telemetry().Counter("enrich.udf_runs").Value()
	if runsAfterFirst == 0 {
		t.Fatal("first query ran no enrichment")
	}
	r2, err := s2.QueryTight("SELECT id, label FROM Events WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Telemetry().Counter("enrich.udf_runs").Value(); got != runsAfterFirst {
		t.Errorf("second session re-ran enrichment: %d -> %d runs", runsAfterFirst, got)
	}
	if renderRows(r1.Rows) != renderRows(r2.Rows) {
		t.Errorf("sessions disagree:\n%s\nvs\n%s", renderRows(r1.Rows), renderRows(r2.Rows))
	}
}

// TestAdmissionControl pins the serving limits: sessions beyond MaxSessions
// queue up to the timeout and fail with ErrSessionTimeout; closing a session
// frees its slot; telemetry counts all of it.
func TestAdmissionControl(t *testing.T) {
	db := servingDB(t, 4)
	defer db.Close()
	db.SetServing(ServingConfig{MaxSessions: 1, QueueTimeout: 30 * time.Millisecond})

	s1, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Session(); !errors.Is(err, ErrSessionTimeout) {
		t.Fatalf("over-capacity session: got %v, want ErrSessionTimeout", err)
	}
	reg := db.Telemetry()
	if got := reg.Counter("serve.sessions_rejected").Value(); got != 1 {
		t.Errorf("sessions_rejected = %d, want 1", got)
	}

	// A queued waiter is admitted when the slot frees.
	done := make(chan error, 1)
	db.SetServing(ServingConfig{MaxSessions: 1, QueueTimeout: 5 * time.Second})
	// Note: s1 still holds a slot of the previous configuration; the new
	// gate starts with one free slot.
	s2, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s3, err := db.Session()
		if err == nil {
			s3.Close()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	s2.Close()
	if err := <-done; err != nil {
		t.Fatalf("queued session not admitted after close: %v", err)
	}
	s1.Close()
	if got := reg.Counter("serve.sessions_admitted").Value(); got < 2 {
		t.Errorf("sessions_admitted = %d, want >= 2", got)
	}
	if got := reg.Gauge("serve.sessions_active").Value(); got != 0 {
		t.Errorf("sessions_active = %d after all closes, want 0", got)
	}

	// Unlimited again: no admission bookkeeping, sessions just open.
	db.SetServing(ServingConfig{})
	s4, err := db.Session()
	if err != nil {
		t.Fatal(err)
	}
	s4.Close()

	// Closed sessions refuse queries.
	if _, err := s2.Query("SELECT id FROM Events"); err == nil {
		t.Error("query on closed session must fail")
	}
}

// TestConcurrentWriteQueryRace is the -race regression for the top-level
// read/write race: before tuples were copy-on-write, Update mutated the
// value slice aliased by concurrently materialized query rows, and the race
// detector flagged every concurrent Update/Query pair. The test needs no
// assertions beyond "no error": the detector does the work.
func TestConcurrentWriteQueryRace(t *testing.T) {
	db := servingDB(t, 32)
	defer db.Close()

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Disjoint id ranges per writer: delete/insert of an id never
				// races another writer's update of the same id.
				id := int64(1 + w*16 + (i*7)%16)
				var err error
				switch i % 3 {
				case 0:
					err = db.Update("Events", id, "feature", Vector([]float64{float64(i), float64(w)}))
				case 1:
					err = db.Update("Events", id, "grp", Int(int64(i%4)))
				default:
					if err = db.Delete("Events", id); err == nil {
						_, err = db.Insert("Events", id, Int(id), Vector([]float64{float64(i)}), Int(0), Null)
					}
				}
				if err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Query("SELECT id, grp, label FROM Events WHERE grp = 1"); err != nil {
					errs <- fmt.Errorf("reader %d plain: %w", r, err)
					return
				}
				if _, err := db.QueryLoose("SELECT id, label FROM Events WHERE label = 0"); err != nil {
					errs <- fmt.Errorf("reader %d loose: %w", r, err)
					return
				}
				if _, err := db.QueryTight("SELECT id, label FROM Events WHERE label = 1"); err != nil {
					errs <- fmt.Errorf("reader %d tight: %w", r, err)
					return
				}
			}
		}(r)
	}
	// Readers decide the duration; writers spin until told to stop.
	readers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// renderRows canonicalizes a result for comparison (row order ignored).
func renderRows(rows *Rows) string {
	if rows == nil {
		return "<nil>"
	}
	lines := make([]string, 0, rows.Len())
	for i := 0; i < rows.Len(); i++ {
		line := ""
		for j, v := range rows.At(i) {
			if j > 0 {
				line += "\t"
			}
			line += v.String()
		}
		lines = append(lines, line)
	}
	sortStrings(lines)
	out := ""
	for _, c := range rows.Columns() {
		out += c + " "
	}
	for _, l := range lines {
		out += "\n" + l
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
